// BSP (Algorithm 1) and SPP (§4): spatial-first kSP evaluation. Both share
// one loop skeleton — SPP is BSP plus Pruning Rule 1 (unqualified place
// pruning via the reachability oracle) and Pruning Rule 2 (dynamic
// looseness bound inside TQSP construction).

#include <limits>

#include "common/timer.h"
#include "core/executor.h"
#include "core/parallel_query.h"

namespace ksp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<KspResult> QueryExecutor::ExecuteBsp(const KspQuery& query,
                                            QueryStats* stats) {
  return ExecuteSpatialFirst(query, stats, /*use_rule1=*/false,
                             /*use_rule2=*/false);
}

Result<KspResult> QueryExecutor::ExecuteSpp(const KspQuery& query,
                                            QueryStats* stats) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  const KspOptions& options = db_->options();
  if (options.use_unqualified_pruning &&
      db_->reachability_index() == nullptr) {
    return Status::InvalidArgument(
        "SPP with unqualified-place pruning requires "
        "BuildReachabilityIndex()");
  }
  return ExecuteSpatialFirst(query, stats,
                             options.use_unqualified_pruning,
                             options.use_dynamic_bound_pruning);
}

Result<KspResult> QueryExecutor::ExecuteSpatialFirst(const KspQuery& query,
                                                     QueryStats* stats,
                                                     bool use_rule1,
                                                     bool use_rule2) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  const KspOptions& options = db_->options();
  Timer total_timer;
  total_timer.Start();
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();
  QueryTrace* trace = BeginQuery();
  graph_cursor_.ResetIo();

  // Full-query result cache (DESIGN.md §9). EXPLAIN always executes the
  // uncached sequential path — a cached answer has no candidate rows.
  // Under a shared scatter-gather θ (§12) the result layer is bypassed
  // both ways: the key has no θ component, so a θ-truncated shard answer
  // could neither be stored nor served exactly. The per-keyword dg layer
  // below stays on — distances are exact regardless of θ.
  SemanticQueryCache* cache = db_->semantic_cache();
  const bool result_layer_on =
      cache != nullptr && !explain_on() && shared_theta_ == nullptr;
  std::string result_key;
  if (result_layer_on) {
    result_key = SemanticQueryCache::MakeResultKey(
        query, /*path_tag=*/'S', use_rule1, use_rule2, /*alpha=*/0,
        options.ranking);
    KspResult cached;
    bool hit;
    {
      TraceSpan span(trace, TracePhase::kCacheLookup);
      hit = cache->LookupResult(result_key, cache_epoch_, &cached);
    }
    if (hit) {
      ++st->result_cache_hits;
      st->total_ms = total_timer.ElapsedMillis();
      RecordQueryMetrics(*st);
      return cached;
    }
    ++st->result_cache_misses;
  }

  QueryContext ctx;
  {
    TraceSpan span(trace, TracePhase::kDocFetch);
    KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));
    FoldIo(ctx.io, st);
  }

  double semantic_seconds = 0.0;
  TopKHeap heap(query.k);
  if (ctx.answerable && UsePipeline()) {
    // An interruption status from the pipeline flows into the shared
    // interrupted-query epilogue below (partial stats + metrics); any
    // other error (disk-backend read failure) propagates as-is.
    const Status pipeline_status = EnsurePipeline()->RunSpatialFirst(
        query, ctx, use_rule1, use_rule2, total_timer, &heap, st,
        &semantic_seconds, trace, cancel_, cache_epoch_);
    if (!pipeline_status.ok()) {
      if (!pipeline_status.IsInterruption()) return pipeline_status;
      interrupt_status_ = pipeline_status;
    }
  } else if (ctx.answerable) {
    ExplainTermination("exhausted");
    NearestIterator iterator(db_->spatial_accessor(), query.location);
    NearestIterator::Item item;
    PageIoCounters folded_nn_io;
    for (;;) {
      bool has_item;
      {
        TraceSpan span(trace, TracePhase::kRtreeNn);
        has_item = iterator.Next(&item);
        span.AddItems(1);
        FoldIoDelta(iterator.io(), &folded_nn_io, st);
      }
      if (!has_item) break;
      if (total_timer.ElapsedMillis() > options.time_limit_ms) {
        st->completed = false;
        ExplainTermination("timeout");
        break;
      }
      if (CheckInterrupt()) {
        ExplainTermination("cancelled");
        break;
      }
      const double theta = EffectiveThreshold(heap);
      // Termination (Algorithm 1, line 7): entries arrive in ascending
      // spatial distance and f(L, S) >= MinScore(S) for L >= 1.
      if (options.ranking.MinScoreGivenSpatialDistance(item.distance) >=
          theta) {
        ExplainTermination("threshold");
        break;
      }
      if (item.is_node) continue;  // Children already enqueued.

      const PlaceId place = static_cast<PlaceId>(item.id);
      const VertexId root = db_->kb().place_vertex(place);
      const double spatial = item.distance;

      ExplainCandidate row;
      row.place = place;
      row.spatial_distance = spatial;
      row.threshold = theta;
      row.score_bound =
          options.ranking.MinScoreGivenSpatialDistance(spatial);

      if (use_rule1) {
        bool unqualified;
        {
          TraceSpan span(trace, TracePhase::kRule1Prune);
          unqualified = IsUnqualifiedPlace(root, ctx, st);
        }
        if (unqualified) {
          ++st->pruned_unqualified;  // Pruning Rule 1.
          if (explain_on()) {
            row.looseness = kInf;
            row.outcome = CandidateOutcome::kPrunedRule1;
            ExplainCandidateRow(row);
          }
          continue;
        }
      }

      const double looseness_threshold =
          use_rule2 ? options.ranking.LoosenessThreshold(theta, spatial)
                    : kInf;

      // dg-cache fast path: when every keyword distance is cached, the
      // prune/reject decision replays exactly and the BFS is skipped
      // (kMiss covers would-be top-k entries, which need their tree).
      // Disabled under EXPLAIN to keep candidate rows identical to the
      // uncached walk.
      if (cache != nullptr && !explain_on()) {
        double cached_looseness = kInf;
        CachedTqsp outcome;
        {
          TraceSpan span(trace, TracePhase::kCacheLookup);
          outcome = TryCachedTqsp(root, place, ctx, looseness_threshold,
                                  use_rule2, heap, spatial,
                                  &cached_looseness);
        }
        if (outcome != CachedTqsp::kMiss) {
          ++st->dg_cache_hits;
          if (outcome == CachedTqsp::kPrunedRule2) {
            ++st->pruned_dynamic_bound;
            if (trace != nullptr) {
              trace->RecordEvent(TracePhase::kRule2Prune);
            }
          }
          continue;
        }
        ++st->dg_cache_misses;
      }

      ++st->tqsp_computations;
      const uint64_t rule2_before = st->pruned_dynamic_bound;
      const uint64_t visited_before = st->vertices_visited;
      SemanticPlaceTree tree;
      tree.place = place;
      double looseness;
      {
        ScopedTimer semantic_timer(&semantic_seconds);
        TraceSpan span(trace, TracePhase::kTqspCompute);
        looseness = ComputeTqsp(root, ctx, looseness_threshold, use_rule2,
                                &tree, st);
        span.AddItems(st->vertices_visited - visited_before);
      }
      KSP_RETURN_NOT_OK(graph_cursor_.status);
      if (!interrupt_status_.ok()) {
        // The BFS was cut short: its +inf looseness proves nothing, so
        // no prune/unqualified accounting — unwind with partial stats.
        ExplainTermination("cancelled");
        break;
      }
      if (looseness == kInf) {  // Unqualified or Rule-2 pruned.
        const bool rule2 = st->pruned_dynamic_bound > rule2_before;
        if (rule2 && trace != nullptr) {
          trace->RecordEvent(TracePhase::kRule2Prune);
        }
        if (explain_on()) {
          row.looseness = rule2 ? looseness_threshold : kInf;
          row.outcome = rule2 ? CandidateOutcome::kPrunedRule2
                              : CandidateOutcome::kUnqualified;
          ExplainCandidateRow(row);
        }
        continue;
      }

      KspResultEntry entry;
      entry.place = place;
      entry.looseness = looseness;
      entry.spatial_distance = spatial;
      entry.score = options.ranking.Score(looseness, spatial);
      if (explain_on()) {
        row.looseness = looseness;
        row.score = entry.score;
        row.outcome = CandidateOutcome::kComputed;
        ExplainCandidateRow(row);
      }
      entry.tree = std::move(tree);
      heap.Add(std::move(entry));
    }
    KSP_RETURN_NOT_OK(iterator.status());
    st->rtree_nodes_accessed = iterator.nodes_accessed();
  } else {
    ExplainTermination("unanswerable");
  }

  st->semantic_ms = semantic_seconds * 1e3;
  st->total_ms = total_timer.ElapsedMillis();
  // Interrupted (deadline/cancel): the error status carries the verdict,
  // the partial QueryStats stay observable, and the partial top-k is
  // never presented as a result.
  if (!interrupt_status_.ok()) return FinishInterrupted(st);
  KspResult result = std::move(heap).Finish();
  // Only completed runs are cached: a timeout's partial top-k is not the
  // answer. The pipeline path flows through here too.
  if (result_layer_on && st->completed) {
    st->cache_evictions +=
        cache->InsertResult(result_key, cache_epoch_, result);
  }
  RecordQueryMetrics(*st);
  return result;
}

}  // namespace ksp
