#ifndef KSP_CORE_EXECUTOR_H_
#define KSP_CORE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/types.h"
#include "core/database.h"
#include "core/explain.h"
#include "core/query.h"
#include "core/semantic_place.h"
#include "core/stats.h"
#include "core/trace.h"
#include "core/vertex_mask_table.h"

namespace ksp {

class IntraQueryPipeline;

/// One step of the monotone dynamic-bound trajectory recorded during a
/// speculative TQSP construction (intra-query pipeline, DESIGN.md §8):
/// from BFS pop `pop_index` onward the Lemma-1 lower bound equals
/// `bound`, until the next step. The bound is evaluated exactly where the
/// sequential Rule-2 abort check reads it (pop top, pre-coverage), so the
/// ordered-commit stage can replay the trajectory against the exact
/// commit-time threshold and reconstruct the abort pop — and hence the
/// prune decision and visited-vertex count — the sequential algorithm
/// would have produced.
struct TqspBoundStep {
  uint64_t pop_index = 0;
  double bound = 0.0;
};

/// Speculation hooks threaded into ComputeTqsp by pipeline workers:
/// `live_theta` is the shared atomic θ (k-th best committed score) the
/// worker re-reads each pop to keep its speculative dynamic bound as
/// tight as the commits so far allow — θ only decreases, so every
/// re-derived threshold stays ≥ the exact commit-time threshold and a
/// speculative abort implies a sequential abort. `bound_log` receives the
/// TqspBoundStep trajectory for the commit-time replay.
struct TqspSpeculation {
  const std::atomic<double>* live_theta = nullptr;
  const RankingFunction* ranking = nullptr;
  double spatial_distance = 0.0;
  std::vector<TqspBoundStep>* bound_log = nullptr;
};

/// Bounded top-k accumulator ordered by (score, place) with the threshold
/// θ used by all algorithms' pruning rules.
class TopKHeap {
 public:
  explicit TopKHeap(uint32_t k) : k_(k) {}

  /// θ: score of the current k-th candidate; +inf while not full.
  double Threshold() const;

  /// Inserts if the entry beats the current k-th candidate.
  void Add(KspResultEntry entry);

  /// True iff Add would insert an entry with this (score, place) —
  /// including the exact tie handling Add applies when the heap is full.
  /// Lets the semantic-cache fast path decide "is the BFS-materialized
  /// tree needed?" without mutating the heap.
  bool WouldAdd(double score, PlaceId place) const;

  bool Full() const { return entries_.size() >= k_; }

  /// Entries in ascending (score, place) order.
  KspResult Finish() &&;

 private:
  uint32_t k_;
  /// Max-heap on (score, place): worst candidate at front.
  std::vector<KspResultEntry> entries_;
};

/// A per-query (or per-thread) execution session over one prepared
/// KspDatabase. Holds only mutable scratch state — epoch-tagged BFS
/// arrays, the per-query keyword context, the top-k heap — so it is cheap
/// to construct on the stack and any number of executors can run
/// concurrently against the same database.
///
/// Evaluates kSP queries with the paper's three algorithms (BSP §3,
/// SPP §4, SP §5) plus the TA baseline (§6.2.6). The database must be
/// prepared before querying: every Execute* fails with
/// Status::InvalidArgument if the R-tree has not been built — executors
/// never build indexes.
///
/// One executor is NOT thread-safe (its scratch is reused across calls);
/// use one executor per thread.
class QueryExecutor {
 public:
  explicit QueryExecutor(const KspDatabase* db);

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  const KspDatabase& db() const { return *db_; }

  /// ---- Query algorithms ----

  /// Basic Semantic Place retrieval (Algorithm 1).
  Result<KspResult> ExecuteBsp(const KspQuery& query,
                               QueryStats* stats = nullptr);

  /// Semantic Place retrieval with Pruning Rules 1 and 2 (§4).
  Result<KspResult> ExecuteSpp(const KspQuery& query,
                               QueryStats* stats = nullptr);

  /// Semantic Place retrieval with α-radius bounds (Algorithm 4, §5).
  Result<KspResult> ExecuteSp(const KspQuery& query,
                              QueryStats* stats = nullptr);

  /// Threshold Algorithm baseline combining a looseness-ordered keyword
  /// stream with the spatial NN stream (§6.2.6).
  Result<KspResult> ExecuteTa(const KspQuery& query,
                              QueryStats* stats = nullptr);

  /// Location-free RDF keyword search ([43]/BLINKS restricted to place
  /// roots): the top-k places by looseness alone. query.location is
  /// ignored for ranking (entry.score == looseness); spatial distance is
  /// still reported per entry.
  Result<KspResult> ExecuteKeywordOnly(const KspQuery& query,
                                       QueryStats* stats = nullptr);

  /// Computes the TQSP of one place for a query (Algorithm 2), with the
  /// full tree (matched vertices and root paths) materialized. Fails on
  /// an invalid query (e.g. more than 64 distinct keywords).
  Result<SemanticPlaceTree> ComputeTqspForPlace(PlaceId place,
                                                const KspQuery& query);

  /// Footnote 2, option (2): like ComputeTqspForPlace but collecting, per
  /// keyword, *every* vertex at the minimum distance — i.e., the full set
  /// of tied minimum-looseness semantic places rooted at `place`.
  Result<TiedSemanticPlace> ComputeTqspAlternatives(PlaceId place,
                                                    const KspQuery& query);

  /// ---- Observability ----

  /// EXPLAIN: evaluates the query while recording every candidate the
  /// search touches (visit order, θ and looseness at decision time, which
  /// pruning rule killed it) plus the termination reason. Supported for
  /// the place-at-a-time algorithms (BSP, SPP, SP); TA/keyword-only
  /// return Unimplemented.
  Result<ExplainReport> Explain(const KspQuery& query,
                                KspAlgorithm algorithm = KspAlgorithm::kSp);

  /// Attaches a per-query trace sink: every subsequent Execute* clears it
  /// and records its phase spans into it. Pass nullptr to detach —
  /// tracing then costs nothing on the query path (see TraceSpan).
  /// The trace must outlive the executor or be detached first.
  void set_trace(QueryTrace* trace) { trace_ = trace; }
  QueryTrace* trace() const { return trace_; }

  /// Attaches a metrics registry: every subsequent Execute* increments
  /// the ksp_* query counters/histograms (DESIGN.md §7), including
  /// per-phase exclusive time counters gathered through an internal
  /// aggregate-only trace when no external trace is attached. Handles are
  /// cached here, so registration cost is paid once. Pass nullptr to
  /// detach. The registry must outlive the executor or be detached first.
  void set_metrics(MetricsRegistry* registry);
  MetricsRegistry* metrics() const { return metrics_.registry; }

  /// Attaches a cancellation/deadline token polled cooperatively at phase
  /// boundaries (per candidate place, every few dozen BFS pops, per
  /// pipeline commit). When the token trips, the running Execute* unwinds
  /// promptly and returns Status::Cancelled / Status::DeadlineExceeded
  /// with the partial QueryStats stamped (stats.completed == false) —
  /// never a partial top-k presented as complete. Executor scratch stays
  /// consistent: re-running the same query after a cancellation produces
  /// results byte-identical to an uncancelled run. Pass nullptr to
  /// detach; the token must outlive every Execute* that can observe it.
  void set_cancellation(CancellationToken* token) {
    cancel_ = token;
    interrupt_status_ = Status::OK();
  }
  CancellationToken* cancellation() const { return cancel_; }

  /// Forces the BFS epoch counter, so tests can exercise the uint32_t
  /// wraparound path without 2^32 warm-up queries.
  void set_bfs_epoch_for_testing(uint16_t epoch) { epoch_ = epoch; }

  /// Intra-query parallelism degree (DESIGN.md §8). With n >= 2, BSP, SPP
  /// and SP run as a producer/worker/ordered-commit pipeline with n
  /// speculative TQSP workers; results — the top-k, completion flag, and
  /// every committed QueryStats prune/visit counter — are bit-identical
  /// to the sequential path at every n. With n <= 1 (the default) the
  /// sequential code runs untouched. Explain(), TA and keyword-only are
  /// always sequential. The pipeline's threads are created lazily on the
  /// first parallel query and live until the executor is destroyed.
  void set_intra_query_threads(uint32_t n) {
    intra_query_threads_ = n == 0 ? 1 : n;
  }
  uint32_t intra_query_threads() const { return intra_query_threads_; }

  /// Attaches a shared global θ (DESIGN.md §12): every θ read of the
  /// pruning rules and heap-admission checks becomes
  /// min(local heap θ, *theta). The atomic only ever decreases during a
  /// scatter-gather query, so the effective threshold stays ≥ the final
  /// global θ and every prune a shard takes is one the merged execution
  /// would also take — exactness is preserved while shards tighten each
  /// other. Side effects while attached: the result-cache layer is
  /// bypassed (a θ-truncated shard result must never be cached under a
  /// θ-free key; the dg layer stays on — distances are exact regardless
  /// of θ) and the intra-query pipeline is disabled (its workers own the
  /// atomic-θ plumbing). Pass nullptr to detach; the atomic must outlive
  /// every Execute* that can observe it.
  void set_shared_theta(const std::atomic<double>* theta) {
    shared_theta_ = theta;
  }
  const std::atomic<double>* shared_theta() const { return shared_theta_; }

  ~QueryExecutor();

 private:
  friend class TaSearch;
  friend class IntraQueryPipeline;

  /// Per-query derived state: deduplicated keywords, their posting lists,
  /// and the vertex -> keyword-bitmask map M_q.ψ of §3.
  struct QueryContext {
    const KspQuery* query = nullptr;
    std::vector<TermId> terms;  // deduplicated, query order
    uint64_t full_mask = 0;
    bool answerable = true;
    /// M_q.ψ as a flat open-addressed table (DESIGN.md §13): read-only
    /// after PrepareContext, so pipeline workers share it like every
    /// other QueryContext field.
    VertexMaskTable vertex_mask;
    /// Posting-list views aligned with `terms`: zero-copy spans into the
    /// inverted index when it is memory-resident, else views into
    /// `owned_postings` (the disk index's per-query copies).
    std::vector<std::span<const VertexId>> postings;
    std::vector<std::vector<VertexId>> owned_postings;
    std::vector<uint32_t> rarest_first;  // keyword idxs by posting length
    /// Page I/O of the posting fetches (disk backend; zero on memory).
    PageIoCounters io;

    uint64_t MaskOf(VertexId v) const { return vertex_mask.Find(v); }
  };

  Status PrepareContext(const KspQuery& query, QueryContext* ctx) const;

  /// The prepared-before-query contract: every Execute* calls this first.
  Status CheckPrepared() const;

  /// Shared loop of BSP and SPP: places in ascending spatial distance,
  /// optional Pruning Rules 1 and 2.
  Result<KspResult> ExecuteSpatialFirst(const KspQuery& query,
                                        QueryStats* stats, bool use_rule1,
                                        bool use_rule2);

  /// GetSemanticPlace / GetSemanticPlaceP: BFS TQSP construction. Returns
  /// L(T_p) or +inf (unqualified, or aborted by the dynamic bound when
  /// `looseness_threshold` < +inf and dynamic pruning is on). If `tree` is
  /// non-null, matches and root paths are materialized on success.
  /// `spec` (pipeline workers only) supplies the live-θ re-read and the
  /// bound-trajectory log; the sequential path passes nullptr and is
  /// byte-for-byte unaffected.
  double ComputeTqsp(VertexId root, const QueryContext& ctx,
                     double looseness_threshold, bool use_dynamic_bound,
                     SemanticPlaceTree* tree, QueryStats* stats,
                     const TqspSpeculation* spec = nullptr);

  /// Pruning Rule 1: true if some query keyword is unreachable from root.
  bool IsUnqualifiedPlace(VertexId root, const QueryContext& ctx,
                          QueryStats* stats) const;

  /// Outcome of a dg-cache probe for one candidate (DESIGN.md §9).
  /// Anything but kMiss means every keyword distance was cached and the
  /// TQSP BFS can be skipped with a decision bit-identical to running it:
  ///   kUnqualified  some keyword is cached-unreachable (looseness +inf).
  ///   kPrunedRule2  L >= the Rule-2 threshold — exactly when the
  ///                 sequential BFS would abort via the dynamic bound.
  ///   kRejected     L is exact but TopKHeap::Add would ignore the entry.
  /// A candidate that WOULD enter the top-k still returns kMiss: the BFS
  /// must run to materialize its tree.
  enum class CachedTqsp { kMiss, kUnqualified, kPrunedRule2, kRejected };

  /// Probes the shared dg cache for every keyword of `ctx`. On kPrunedRule2
  /// / kRejected, `*looseness` holds the exact L(T_p).
  CachedTqsp TryCachedTqsp(VertexId root, PlaceId place,
                           const QueryContext& ctx,
                           double looseness_threshold, bool use_rule2,
                           const TopKHeap& heap, double spatial,
                           double* looseness) const;

  /// Advances the BFS epoch, zero-filling the visit array when the
  /// uint32_t counter wraps (stale marks would otherwise alias the fresh
  /// epoch and corrupt TQSP construction).
  uint16_t BeginBfsEpoch();

  /// ---- Page-I/O folding (disk backend; all no-ops when io is zero) ----

  /// Folds externally measured page-I/O into the query's stats and the
  /// active trace's `page_io` phase. Call while the trace span that
  /// contained the I/O is still open, so the exclusive-time partition
  /// stays intact (see QueryTrace::AddChildTime).
  void FoldIo(const PageIoCounters& io, QueryStats* stats);
  /// FoldIo for an owned cursor counter: folds, then zeroes it.
  void FoldCursorIo(PageIoCounters* io, QueryStats* stats) {
    FoldIo(*io, stats);
    *io = PageIoCounters();
  }
  /// FoldIo for a cumulative counter read through a const ref (e.g.
  /// NearestIterator::io()): folds only the growth since `*folded`, then
  /// advances the snapshot.
  void FoldIoDelta(const PageIoCounters& cumulative, PageIoCounters* folded,
                   QueryStats* stats);

  /// ---- Observability internals ----

  /// Cached metric handles (resolved once in set_metrics; the query path
  /// never takes the registry mutex).
  struct MetricsHandles {
    MetricsRegistry* registry = nullptr;
    Counter* queries = nullptr;
    Counter* timeouts = nullptr;
    Counter* tqsp = nullptr;
    Counter* rtree_nodes = nullptr;
    Counter* bfs_vertices = nullptr;
    Counter* reach_queries = nullptr;
    Counter* pruned_rule[4] = {};
    Counter* wasted_tqsp = nullptr;
    Counter* cache_hits = nullptr;
    Counter* cache_misses = nullptr;
    Counter* cache_evictions = nullptr;
    Gauge* cache_bytes = nullptr;
    Counter* bufferpool_hits = nullptr;
    Counter* bufferpool_misses = nullptr;
    Counter* bufferpool_evictions = nullptr;
    Counter* wall_us = nullptr;
    Counter* semantic_us = nullptr;
    Counter* cancellations = nullptr;
    Counter* phase_us[kNumTracePhases] = {};
    Histogram* latency_ms = nullptr;
  };

  /// The trace Execute* should write spans into: the attached trace if
  /// any, the internal aggregate-only trace when only metrics are on,
  /// else nullptr (spans then compile down to the null check).
  QueryTrace* active_trace() {
    if (trace_ != nullptr) return trace_;
    return metrics_.registry != nullptr ? &internal_trace_ : nullptr;
  }

  /// Clears the active trace for a fresh query; every Execute* entry
  /// point calls this once.
  QueryTrace* BeginQueryTrace() {
    QueryTrace* trace = active_trace();
    if (trace != nullptr) trace->Clear();
    return trace;
  }

  /// Per-query entry bookkeeping shared by every Execute*: clears the
  /// sticky interrupt status from a previous (cancelled) run and
  /// snapshots the semantic-cache invalidation epoch every cache
  /// operation of this query is tagged with (see SemanticQueryCache).
  QueryTrace* BeginQuery() {
    interrupt_status_ = Status::OK();
    const SemanticQueryCache* cache = db_->semantic_cache();
    cache_epoch_ = cache != nullptr ? cache->epoch() : 0;
    return BeginQueryTrace();
  }

  /// Polls the attached cancellation token (no token: always false). The
  /// first trip sticks in interrupt_status_ until the next Execute*, so
  /// every later poll of the same query is a cheap branch and the
  /// algorithm loops unwind deterministically.
  bool CheckInterrupt() {
    if (cancel_ == nullptr) return false;
    if (interrupt_status_.ok()) {
      Status st = cancel_->Check();
      if (!st.ok()) interrupt_status_ = std::move(st);
    }
    return !interrupt_status_.ok();
  }

  /// Interrupted-query epilogue: marks the stats incomplete, bumps the
  /// cancellations counter, flushes metrics, and returns the interrupt
  /// status. Callers stamp total_ms/semantic_ms first — the partial
  /// stats stay observable on the caller-provided QueryStats.
  Status FinishInterrupted(QueryStats* st);

  /// Flushes one finished query into the metrics registry: QueryStats
  /// counters, wall/semantic time, the latency histogram, and the active
  /// trace's per-phase exclusive times.
  void RecordQueryMetrics(const QueryStats& stats);

  /// Appends an EXPLAIN candidate row (no-op unless Explain() is live).
  void ExplainCandidateRow(const ExplainCandidate& row) {
    if (explain_ == nullptr) return;
    explain_->candidates.push_back(row);
    explain_->candidates.back().order = explain_order_++;
  }
  void ExplainTermination(const char* reason) {
    if (explain_ != nullptr) explain_->termination = reason;
  }
  bool explain_on() const { return explain_ != nullptr; }

  /// True when the next spatial-first / α-ordered query should run on the
  /// intra-query pipeline (threads >= 2 and no EXPLAIN capture, which
  /// needs the sequential candidate walk).
  bool UsePipeline() const {
    return intra_query_threads_ >= 2 && explain_ == nullptr &&
           shared_theta_ == nullptr;
  }

  /// θ as the pruning rules must see it: the local heap threshold,
  /// tightened by the shared global θ when one is attached (§12). Both
  /// only decrease within a query, so the min is monotone too.
  double EffectiveThreshold(const TopKHeap& heap) const {
    const double local = heap.Threshold();
    if (shared_theta_ == nullptr) return local;
    const double global = shared_theta_->load(std::memory_order_acquire);
    return global < local ? global : local;
  }

  /// Lazily (re)builds the pipeline to match intra_query_threads_.
  IntraQueryPipeline* EnsurePipeline();

  const KspDatabase* db_;

  /// BFS scratch (epoch-tagged to avoid per-query clears). Epochs are
  /// deliberately 16-bit: the visit array is the single hottest
  /// randomly-accessed structure of the whole engine (~degree touches
  /// per BFS pop), and halving it doubles how much of it the L1 cache
  /// holds. The wrap refill in BeginBfsEpoch fires every 65535 epochs —
  /// one memset amortized over 65k TQSP constructions.
  std::vector<uint16_t> visit_epoch_;
  std::vector<VertexId> bfs_parent_;
  uint16_t epoch_ = 0;

  /// Flat frontier scratch of the level-synchronous BFS (DESIGN.md §13),
  /// holding (parent, vertex) pairs fused in a u64 per entry. Sized to
  /// the vertex count on first use and retained across candidates and
  /// queries, so the steady state allocates nothing. Only ComputeTqsp
  /// touches these.
  std::vector<uint64_t> frontier_;
  std::vector<uint64_t> next_frontier_;

  /// TQSP per-candidate tree scratch (match records, path reversal).
  /// Reset at each ComputeTqsp entry — allocations never outlive the
  /// candidate; see common/arena.h for the lifetime rules.
  Arena tqsp_arena_;

  /// Storage-accessor scratch (per-executor, like the BFS arrays). The
  /// graph cursor's sticky status is reset at each Execute* entry and
  /// checked after every BFS — a page-read failure surfaces as a query
  /// error instead of a silently truncated expansion.
  GraphCursor graph_cursor_;
  SpatialCursor spatial_cursor_;

  /// Cooperative cancellation (see set_cancellation). interrupt_status_
  /// is the sticky first trip of the current query; cleared by
  /// BeginQuery()/set_cancellation.
  CancellationToken* cancel_ = nullptr;
  Status interrupt_status_;

  /// Semantic-cache epoch snapshot of the current query (BeginQuery);
  /// tags every cache lookup/insert so an index reload mid-query can
  /// never mix cached data across generations. The pipeline copies the
  /// driving executor's snapshot onto its workers.
  uint64_t cache_epoch_ = 0;

  /// Observability state. The internal trace is aggregate-only scratch
  /// (record_spans off) used when metrics are attached without a trace.
  QueryTrace* trace_ = nullptr;
  QueryTrace internal_trace_;
  MetricsHandles metrics_;
  ExplainReport* explain_ = nullptr;
  uint32_t explain_order_ = 0;

  /// Intra-query parallelism (lazy; see set_intra_query_threads).
  uint32_t intra_query_threads_ = 1;
  std::unique_ptr<IntraQueryPipeline> pipeline_;

  /// Shared scatter-gather θ (see set_shared_theta); null = unsharded.
  const std::atomic<double>* shared_theta_ = nullptr;
};

}  // namespace ksp

#endif  // KSP_CORE_EXECUTOR_H_
