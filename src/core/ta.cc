// TA baseline (§6.2.6): Fagin's threshold algorithm over two ranked
// streams — qualified semantic places in ascending looseness (produced by
// backward multi-source BFS from the keyword postings, the keyword-first
// strategy of [43]) and places in ascending spatial distance (incremental
// R-tree NN). Random access completes the missing attribute of each pulled
// place; the run stops when the top-k can no longer be outranked by
// f(last_L, last_S).

#include <limits>
#include <queue>

#include "common/timer.h"
#include "core/executor.h"

namespace ksp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint16_t kUnknownDist = 0xFFFF;
}  // namespace

/// Incremental looseness-ordered enumeration of qualified places.
/// Frontier i starts at the posting vertices of keyword i and expands over
/// reversed edges, so that a place first reached by frontier i at round d
/// satisfies dg(p, t_i) = d. A place whose m distances are all known has
/// its exact TQSP looseness; it is emitted once no unfinished place can
/// have smaller looseness (every unknown distance exceeds the current
/// round).
class TaSearch {
 public:
  TaSearch(QueryExecutor* exec, const QueryExecutor::QueryContext& ctx,
           QueryStats* stats)
      : exec_(exec),
        db_(exec->db()),
        ctx_(ctx),
        stats_(stats),
        trace_(exec->active_trace()),
        graph_(db_.graph_accessor()),
        n_(graph_.num_vertices()),
        m_(ctx.terms.size()),
        dist_(static_cast<size_t>(n_) * m_, kUnknownDist),
        found_count_(db_.kb().num_places(), 0),
        frontiers_(m_) {}

  Result<KspResult> Run(const KspQuery& query);

  /// Location-free variant: the first k places off the looseness stream.
  Result<KspResult> RunKeywordOnly(const KspQuery& query);

 private:
  struct Candidate {
    double looseness;
    PlaceId place;
  };
  struct CandidateOrder {
    bool operator()(const Candidate& a, const Candidate& b) const {
      if (a.looseness != b.looseness) return a.looseness > b.looseness;
      return a.place > b.place;  // Min-heap on (looseness, place).
    }
  };

  uint16_t& DistOf(size_t keyword, VertexId v) {
    return dist_[keyword * n_ + v];
  }

  bool FrontiersExhausted() const {
    for (const auto& f : frontiers_) {
      if (!f.empty()) return false;
    }
    return true;
  }

  /// Marks v discovered by keyword i at distance d; completes places.
  void Discover(size_t keyword, VertexId v, uint16_t d) {
    DistOf(keyword, v) = d;
    frontiers_[keyword].push_back(v);
    const PlaceId place = db_.kb().place_of(v);
    if (place == kInvalidPlace) return;
    if (++found_count_[place] == m_) {
      double looseness = 1.0;
      for (size_t i = 0; i < m_; ++i) {
        looseness += static_cast<double>(DistOf(i, v));
      }
      emit_heap_.push(Candidate{looseness, place});
    }
  }

  void SeedFrontiers() {
    for (size_t i = 0; i < m_; ++i) {
      for (VertexId v : ctx_.postings[i]) {
        if (DistOf(i, v) == kUnknownDist) Discover(i, v, 0);
      }
    }
  }

  /// Expands every keyword frontier by one hop (round depth_ + 1).
  void ExpandRound() {
    const bool undirected = db_.options().undirected_edges;
    GraphCursor* cursor = &exec_->graph_cursor_;
    for (size_t i = 0; i < m_; ++i) {
      std::vector<VertexId> current;
      current.swap(frontiers_[i]);
      const uint16_t next_d = static_cast<uint16_t>(depth_ + 1);
      for (VertexId v : current) {
        for (VertexId w : graph_.InNeighbors(v, cursor)) {
          if (DistOf(i, w) == kUnknownDist) Discover(i, w, next_d);
        }
        if (undirected) {
          for (VertexId w : graph_.OutNeighbors(v, cursor)) {
            if (DistOf(i, w) == kUnknownDist) Discover(i, w, next_d);
          }
        }
      }
    }
    ++depth_;
  }

  /// Next qualified place in non-decreasing looseness order.
  bool NextByLooseness(Candidate* out) {
    if (!seeded_) {
      SeedFrontiers();
      seeded_ = true;
    }
    while (true) {
      // Expansion rounds sweep whole keyword frontiers; poll between
      // them so a deadline lands within one round. A false return here
      // looks like stream exhaustion to the caller — the caller's own
      // interrupt check turns it into an error before any result ships.
      if (exec_->CheckInterrupt()) return false;
      const bool exhausted = FrontiersExhausted();
      const double emit_bound =
          exhausted ? kInf : static_cast<double>(depth_) + 2.0;
      if (!emit_heap_.empty() && emit_heap_.top().looseness <= emit_bound) {
        *out = emit_heap_.top();
        emit_heap_.pop();
        return true;
      }
      if (exhausted) return false;
      ExpandRound();
    }
  }

  QueryExecutor* exec_;
  const KspDatabase& db_;
  const QueryExecutor::QueryContext& ctx_;
  QueryStats* stats_;
  QueryTrace* trace_;
  const GraphAccessor& graph_;
  const VertexId n_;
  const size_t m_;
  /// dist_[i*n + v] = dg(v, t_i) once discovered.
  std::vector<uint16_t> dist_;
  std::vector<uint8_t> found_count_;
  std::vector<std::vector<VertexId>> frontiers_;
  std::priority_queue<Candidate, std::vector<Candidate>, CandidateOrder>
      emit_heap_;
  uint32_t depth_ = 0;
  bool seeded_ = false;
};

Result<KspResult> TaSearch::Run(const KspQuery& query) {
  Timer total_timer;
  total_timer.Start();
  double semantic_seconds = 0.0;

  const KnowledgeBase& kb = db_.kb();
  const RankingFunction& ranking = db_.options().ranking;
  TopKHeap topk(query.k);
  std::vector<bool> seen(kb.num_places(), false);

  NearestIterator spatial(db_.spatial_accessor(), query.location);
  PageIoCounters folded_nn_io;
  bool spatial_done = false;
  bool loose_done = false;
  double last_looseness = 1.0;
  double last_spatial = 0.0;

  while (!spatial_done || !loose_done) {
    if (total_timer.ElapsedMillis() > db_.options().time_limit_ms) {
      stats_->completed = false;
      break;
    }
    if (exec_->CheckInterrupt()) break;

    // Pull from the looseness stream; random-access its spatial distance.
    if (!loose_done) {
      Candidate candidate{};
      bool got;
      {
        ScopedTimer semantic_timer(&semantic_seconds);
        TraceSpan span(trace_, TracePhase::kBfsExpand);
        got = NextByLooseness(&candidate);
        exec_->FoldCursorIo(&exec_->graph_cursor_.io, stats_);
      }
      KSP_RETURN_NOT_OK(exec_->graph_cursor_.status);
      if (!got) {
        // All qualified places enumerated: unseen places are unqualified.
        loose_done = true;
        break;
      }
      last_looseness = candidate.looseness;
      if (!seen[candidate.place]) {
        seen[candidate.place] = true;
        const double s =
            Distance(query.location, kb.place_location(candidate.place));
        KspResultEntry entry;
        entry.place = candidate.place;
        entry.looseness = candidate.looseness;
        entry.spatial_distance = s;
        entry.score = ranking.Score(candidate.looseness, s);
        topk.Add(std::move(entry));
      }
    }

    // Pull from the spatial stream; random-access its looseness (TQSP).
    if (!spatial_done) {
      NearestIterator::Item item;
      bool got_spatial;
      {
        TraceSpan span(trace_, TracePhase::kRtreeNn);
        got_spatial = spatial.NextData(&item);
        span.AddItems(1);
        exec_->FoldIoDelta(spatial.io(), &folded_nn_io, stats_);
      }
      KSP_RETURN_NOT_OK(spatial.status());
      if (!got_spatial) {
        spatial_done = true;  // Every place seen.
        break;
      }
      last_spatial = item.distance;
      const PlaceId place = static_cast<PlaceId>(item.id);
      if (!seen[place]) {
        seen[place] = true;
        ++stats_->tqsp_computations;
        double looseness;
        {
          ScopedTimer semantic_timer(&semantic_seconds);
          TraceSpan span(trace_, TracePhase::kTqspCompute);
          looseness = exec_->ComputeTqsp(kb.place_vertex(place), ctx_,
                                         kInf, /*use_dynamic_bound=*/false,
                                         nullptr, stats_);
        }
        KSP_RETURN_NOT_OK(exec_->graph_cursor_.status);
        if (looseness != kInf) {
          KspResultEntry entry;
          entry.place = place;
          entry.looseness = looseness;
          entry.spatial_distance = item.distance;
          entry.score = ranking.Score(looseness, item.distance);
          topk.Add(std::move(entry));
        }
      }
    }

    // TA stopping rule: no unseen place can beat f(last_L, last_S).
    const double tau = ranking.Score(last_looseness, last_spatial);
    if (topk.Full() && topk.Threshold() <= tau) break;
  }

  KSP_RETURN_NOT_OK(spatial.status());
  stats_->rtree_nodes_accessed = spatial.nodes_accessed();
  if (!exec_->interrupt_status_.ok()) {
    // Interrupted: stamp the partial timing and surface the error —
    // the partial top-k is never presented as an answer.
    stats_->semantic_ms = semantic_seconds * 1e3;
    stats_->total_ms = total_timer.ElapsedMillis();
    return exec_->interrupt_status_;
  }
  KspResult result = std::move(topk).Finish();
  // Materialize the TQSP trees of the final answers only.
  for (KspResultEntry& entry : result.entries) {
    {
      ScopedTimer semantic_timer(&semantic_seconds);
      TraceSpan span(trace_, TracePhase::kTqspCompute);
      entry.tree.place = entry.place;
      exec_->ComputeTqsp(kb.place_vertex(entry.place), ctx_, kInf,
                         /*use_dynamic_bound=*/false, &entry.tree, nullptr);
    }
    KSP_RETURN_NOT_OK(exec_->graph_cursor_.status);
    // A deadline can also land during tree materialization; a truncated
    // tree must not ship inside a "complete" result.
    if (!exec_->interrupt_status_.ok()) {
      stats_->semantic_ms = semantic_seconds * 1e3;
      stats_->total_ms = total_timer.ElapsedMillis();
      return exec_->interrupt_status_;
    }
  }
  stats_->semantic_ms = semantic_seconds * 1e3;
  stats_->total_ms = total_timer.ElapsedMillis();
  return result;
}

Result<KspResult> TaSearch::RunKeywordOnly(const KspQuery& query) {
  Timer total_timer;
  total_timer.Start();
  double semantic_seconds = 0.0;
  const KnowledgeBase& kb = db_.kb();

  KspResult result;
  Candidate candidate{};
  while (result.entries.size() < query.k) {
    if (total_timer.ElapsedMillis() > db_.options().time_limit_ms) {
      stats_->completed = false;
      break;
    }
    if (exec_->CheckInterrupt()) break;
    bool got;
    {
      ScopedTimer semantic_timer(&semantic_seconds);
      TraceSpan span(trace_, TracePhase::kBfsExpand);
      got = NextByLooseness(&candidate);
      exec_->FoldCursorIo(&exec_->graph_cursor_.io, stats_);
    }
    KSP_RETURN_NOT_OK(exec_->graph_cursor_.status);
    if (!got) break;  // All qualified places enumerated.
    KspResultEntry entry;
    entry.place = candidate.place;
    entry.looseness = candidate.looseness;
    entry.spatial_distance =
        Distance(query.location, kb.place_location(candidate.place));
    entry.score = candidate.looseness;  // Ranking ignores location.
    entry.tree.place = candidate.place;
    {
      ScopedTimer semantic_timer(&semantic_seconds);
      TraceSpan span(trace_, TracePhase::kTqspCompute);
      exec_->ComputeTqsp(kb.place_vertex(candidate.place), ctx_, kInf,
                         /*use_dynamic_bound=*/false, &entry.tree,
                         nullptr);
    }
    KSP_RETURN_NOT_OK(exec_->graph_cursor_.status);
    result.entries.push_back(std::move(entry));
  }
  stats_->semantic_ms = semantic_seconds * 1e3;
  stats_->total_ms = total_timer.ElapsedMillis();
  if (!exec_->interrupt_status_.ok()) return exec_->interrupt_status_;
  return result;
}

Result<KspResult> QueryExecutor::ExecuteKeywordOnly(const KspQuery& query,
                                                    QueryStats* stats) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();
  QueryTrace* trace = BeginQuery();
  graph_cursor_.ResetIo();

  QueryContext ctx;
  {
    TraceSpan span(trace, TracePhase::kDocFetch);
    KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));
    FoldIo(ctx.io, st);
  }
  if (!ctx.answerable || ctx.terms.empty()) {
    RecordQueryMetrics(*st);
    return KspResult{};
  }

  TaSearch search(this, ctx, st);
  auto result = search.RunKeywordOnly(query);
  if (!result.ok() && result.status().IsInterruption()) {
    st->completed = false;
    if (metrics_.cancellations != nullptr) {
      metrics_.cancellations->Increment();
    }
  }
  RecordQueryMetrics(*st);
  return result;
}

Result<KspResult> QueryExecutor::ExecuteTa(const KspQuery& query,
                                           QueryStats* stats) {
  KSP_RETURN_NOT_OK(CheckPrepared());
  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  *st = QueryStats();
  {
    QueryContext probe;
    KSP_RETURN_NOT_OK(PrepareContext(query, &probe));
    if (probe.terms.empty() && probe.answerable) {
      // No keywords: TA's looseness stream is degenerate; fall back to
      // the spatial-first algorithm (every place qualifies with L = 1).
      return ExecuteSpatialFirst(query, st, false, false);
    }
  }
  QueryTrace* trace = BeginQuery();
  graph_cursor_.ResetIo();

  QueryContext ctx;
  {
    TraceSpan span(trace, TracePhase::kDocFetch);
    KSP_RETURN_NOT_OK(PrepareContext(query, &ctx));
    FoldIo(ctx.io, st);
  }
  if (!ctx.answerable) {
    RecordQueryMetrics(*st);
    return KspResult{};
  }

  TaSearch search(this, ctx, st);
  auto result = search.Run(query);
  if (!result.ok() && result.status().IsInterruption()) {
    st->completed = false;
    if (metrics_.cancellations != nullptr) {
      metrics_.cancellations->Increment();
    }
  }
  RecordQueryMetrics(*st);
  return result;
}

}  // namespace ksp
