#include "alpha/alpha_index.h"

#include <algorithm>
#include <cstdio>

#include "common/io_util.h"
#include "common/logging.h"

namespace ksp {

namespace {

/// (term, distance) pair of one entry's word neighborhood, sorted by term.
struct WordDist {
  TermId term;
  uint8_t distance;
};

/// Merges two sorted WNs taking the minimum distance per term.
std::vector<WordDist> MergeMin(const std::vector<WordDist>& a,
                               const std::vector<WordDist>& b) {
  std::vector<WordDist> out;
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].term == b[j].term) {
      out.push_back(WordDist{a[i].term,
                             std::min(a[i].distance, b[j].distance)});
      ++i;
      ++j;
    } else if (a[i].term < b[j].term) {
      out.push_back(a[i]);
      ++i;
    } else {
      out.push_back(b[j]);
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + i, a.end());
  out.insert(out.end(), b.begin() + j, b.end());
  return out;
}

}  // namespace

AlphaIndex AlphaIndex::Build(const KnowledgeBase& kb, const RTree& rtree,
                             uint32_t alpha, bool undirected_edges) {
  KSP_CHECK(alpha >= 1) << "alpha must be positive";
  AlphaIndex index;
  index.alpha_ = alpha;
  index.num_places_ = kb.num_places();
  index.num_nodes_ = static_cast<uint32_t>(rtree.num_nodes());

  const Graph& graph = kb.graph();
  const DocumentStore& docs = kb.documents();
  const VertexId n = graph.num_vertices();

  // --- Per-place WNs: bounded BFS collecting first-seen terms. ---
  std::vector<std::vector<WordDist>> wns(index.num_places_ +
                                         index.num_nodes_);
  std::vector<uint32_t> visit_epoch(n, 0xFFFFFFFFu);
  std::vector<uint32_t> term_epoch(kb.num_terms(), 0xFFFFFFFFu);
  std::vector<VertexId> frontier;
  std::vector<VertexId> next_frontier;

  for (PlaceId p = 0; p < index.num_places_; ++p) {
    const VertexId root = kb.place_vertex(p);
    std::vector<WordDist>& wn = wns[p];
    frontier.clear();
    frontier.push_back(root);
    visit_epoch[root] = p;
    for (uint32_t depth = 0; depth <= alpha && !frontier.empty(); ++depth) {
      for (VertexId v : frontier) {
        for (TermId t : docs.Terms(v)) {
          if (term_epoch[t] != p) {
            term_epoch[t] = p;
            wn.push_back(WordDist{t, static_cast<uint8_t>(depth)});
          }
        }
      }
      if (depth == alpha) break;
      next_frontier.clear();
      for (VertexId v : frontier) {
        for (VertexId w : graph.OutNeighbors(v)) {
          if (visit_epoch[w] != p) {
            visit_epoch[w] = p;
            next_frontier.push_back(w);
          }
        }
        if (undirected_edges) {
          for (VertexId w : graph.InNeighbors(v)) {
            if (visit_epoch[w] != p) {
              visit_epoch[w] = p;
              next_frontier.push_back(w);
            }
          }
        }
      }
      frontier.swap(next_frontier);
    }
    std::sort(wn.begin(), wn.end(),
              [](const WordDist& a, const WordDist& b) {
                return a.term < b.term;
              });
  }

  // --- Node WNs bottom-up (children before parents via post-order). ---
  if (!rtree.empty()) {
    std::vector<uint32_t> postorder;
    postorder.reserve(rtree.num_nodes());
    std::vector<std::pair<uint32_t, bool>> stack{{rtree.root(), false}};
    while (!stack.empty()) {
      auto [node_id, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        postorder.push_back(node_id);
        continue;
      }
      stack.emplace_back(node_id, true);
      const RTree::Node& node = rtree.node(node_id);
      if (!node.is_leaf) {
        for (const RTree::Entry& e : node.entries) {
          stack.emplace_back(static_cast<uint32_t>(e.id), false);
        }
      }
    }
    for (uint32_t node_id : postorder) {
      const RTree::Node& node = rtree.node(node_id);
      std::vector<WordDist> merged;
      for (const RTree::Entry& e : node.entries) {
        const std::vector<WordDist>& child =
            node.is_leaf ? wns[static_cast<PlaceId>(e.id)]
                         : wns[index.num_places_ +
                               static_cast<uint32_t>(e.id)];
        merged = merged.empty() ? child : MergeMin(merged, child);
      }
      wns[index.num_places_ + node_id] = std::move(merged);
    }
  }

  // --- Invert: term -> (entry, dist), entries ascending. ---
  const TermId num_terms = kb.num_terms();
  std::vector<uint64_t> counts(num_terms, 0);
  for (const auto& wn : wns) {
    for (const WordDist& wd : wn) ++counts[wd.term];
  }
  index.offsets_.assign(num_terms + 1, 0);
  for (TermId t = 0; t < num_terms; ++t) {
    index.offsets_[t + 1] = index.offsets_[t] + counts[t];
  }
  index.postings_.resize(index.offsets_[num_terms]);
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (uint32_t entry = 0; entry < wns.size(); ++entry) {
    for (const WordDist& wd : wns[entry]) {
      index.postings_[cursor[wd.term]++] = Posting{entry, wd.distance};
    }
  }
  return index;
}

namespace {
constexpr uint32_t kAlphaMagic = 0x4B535041u;  // "KSPA"
}  // namespace

namespace {
constexpr uint32_t kAlphaFormatVersion = 2;
}  // namespace

Status AlphaIndex::Save(const std::string& path, FileSystem* fs,
                        ArtifactInfo* info) const {
  if (fs == nullptr) fs = DefaultFileSystem();
  return WriteArtifactAtomically(
      fs, path, kAlphaMagic, kAlphaFormatVersion,
      [this](ChecksummedWriter* w) -> Status {
        std::string meta;
        AppendPod(&meta, alpha_);
        AppendPod(&meta, num_places_);
        AppendPod(&meta, num_nodes_);
        KSP_RETURN_NOT_OK(w->WriteSection(meta));
        std::string buf;
        AppendPodVector(&buf, offsets_);
        KSP_RETURN_NOT_OK(w->WriteSection(buf));
        buf.clear();
        AppendPodVector(&buf, postings_);
        return w->WriteSection(buf);
      },
      info);
}

Status AlphaIndex::SaveLegacyForTesting(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  auto write_all = [&]() -> Status {
    KSP_RETURN_NOT_OK(WritePod(f, kAlphaMagic));
    KSP_RETURN_NOT_OK(WritePod(f, alpha_));
    KSP_RETURN_NOT_OK(WritePod(f, num_places_));
    KSP_RETURN_NOT_OK(WritePod(f, num_nodes_));
    KSP_RETURN_NOT_OK(WritePodVector(f, offsets_));
    KSP_RETURN_NOT_OK(WritePodVector(f, postings_));
    KSP_RETURN_NOT_OK(WritePod(f, kAlphaMagic));
    return Status::OK();
  };
  Status st = write_all();
  if (std::fclose(f) != 0 && st.ok()) st = Status::IOError("close failed");
  return st;
}

Result<AlphaIndex> AlphaIndex::LoadLegacy(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  AlphaIndex index;
  auto read_all = [&]() -> Status {
    uint32_t magic = 0;
    KSP_RETURN_NOT_OK(ReadPod(f, &magic));
    if (magic != kAlphaMagic) {
      return Status::Corruption("bad alpha-index magic: " + path);
    }
    KSP_RETURN_NOT_OK(ReadPod(f, &index.alpha_));
    KSP_RETURN_NOT_OK(ReadPod(f, &index.num_places_));
    KSP_RETURN_NOT_OK(ReadPod(f, &index.num_nodes_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.offsets_));
    KSP_RETURN_NOT_OK(ReadPodVector(f, &index.postings_));
    KSP_RETURN_NOT_OK(ReadPod(f, &magic));
    if (magic != kAlphaMagic) {
      return Status::Corruption("bad alpha-index footer: " + path);
    }
    return Status::OK();
  };
  Status st = read_all();
  std::fclose(f);
  if (!st.ok()) return st;
  return index;
}

Result<AlphaIndex> AlphaIndex::Load(const std::string& path,
                                    FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto checksummed = IsChecksummedFile(**file);
  if (!checksummed.ok()) return checksummed.status();
  if (!*checksummed) return LoadLegacy(path);

  ChecksummedReader reader(file->get());
  uint32_t version = 0;
  KSP_RETURN_NOT_OK(reader.Open(kAlphaMagic, &version));
  if (version != kAlphaFormatVersion) {
    return CorruptionAt(path, 4, "unsupported alpha-index format version " +
                                     std::to_string(version));
  }
  AlphaIndex index;
  std::string meta;
  const uint64_t meta_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&meta));
  size_t pos = 0;
  Status st = ParsePod(meta, &pos, &index.alpha_);
  if (st.ok()) st = ParsePod(meta, &pos, &index.num_places_);
  if (st.ok()) st = ParsePod(meta, &pos, &index.num_nodes_);
  if (!st.ok() || pos != meta.size()) {
    return CorruptionAt(path, meta_offset, "malformed meta section");
  }
  auto read_vec = [&](auto* vec) -> Status {
    std::string section;
    const uint64_t section_offset = reader.offset();
    KSP_RETURN_NOT_OK(reader.ReadSection(&section));
    size_t vpos = 0;
    Status vst = ParsePodVector(section, &vpos, vec);
    if (!vst.ok() || vpos != section.size()) {
      return CorruptionAt(path, section_offset, "malformed vector section");
    }
    return Status::OK();
  };
  KSP_RETURN_NOT_OK(read_vec(&index.offsets_));
  KSP_RETURN_NOT_OK(read_vec(&index.postings_));
  KSP_RETURN_NOT_OK(reader.ExpectEnd());
  // CSR sanity: every offset must stay inside the postings array.
  for (uint64_t off : index.offsets_) {
    if (off > index.postings_.size()) {
      return CorruptionAt(path, meta_offset, "CSR offset out of range");
    }
  }
  return index;
}

std::span<const AlphaIndex::Posting> AlphaIndex::TermPostings(
    TermId term) const {
  if (term + 1 >= offsets_.size()) return {};
  return {postings_.data() + offsets_[term],
          postings_.data() + offsets_[term + 1]};
}

std::optional<uint32_t> AlphaIndex::EntryTermDistance(uint32_t entry,
                                                      TermId term) const {
  auto postings = TermPostings(term);
  auto it = std::lower_bound(postings.begin(), postings.end(), entry,
                             [](const Posting& p, uint32_t e) {
                               return p.entry < e;
                             });
  if (it == postings.end() || it->entry != entry) return std::nullopt;
  return it->distance;
}

}  // namespace ksp
