#ifndef KSP_ALPHA_ALPHA_INDEX_H_
#define KSP_ALPHA_ALPHA_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "rdf/knowledge_base.h"
#include "spatial/rtree.h"

namespace ksp {

class FileSystem;
struct ArtifactInfo;

/// §5 preprocessing: the α-radius word neighborhood WN(p) of every place
/// (terms whose nearest occurrence is within graph distance α of p, with
/// that distance) and WN(N) of every R-tree node (term-wise minimum over
/// the enclosed places). Both are stored in one inverted file keyed by
/// term, so a kSP query loads only its keywords' lists (Pruning Rules 3
/// and 4 and the α-bound priority order of Algorithm 4).
class AlphaIndex {
 public:
  /// One inverted-file posting: `entry` is a unified id — places occupy
  /// [0, num_places), R-tree nodes occupy [num_places, num_places +
  /// num_nodes) — and `distance` is dg(entry, term) ≤ α.
  struct Posting {
    uint32_t entry;
    uint8_t distance;
  };

  /// Builds WNs by bounded BFS from every place over out-edges (the TQSP
  /// search direction), then bottom-up merging over `rtree`, whose leaf
  /// payloads must be PlaceIds of `kb`.
  static AlphaIndex Build(const KnowledgeBase& kb, const RTree& rtree,
                          uint32_t alpha, bool undirected_edges = false);

  uint32_t alpha() const { return alpha_; }
  uint32_t num_places() const { return num_places_; }
  uint32_t num_nodes() const { return num_nodes_; }

  /// Unified entry ids.
  uint32_t PlaceEntry(PlaceId p) const { return p; }
  uint32_t NodeEntry(uint32_t node_id) const { return num_places_ + node_id; }

  /// The inverted list of `term` (sorted by entry id). Terms ≥ the KB's
  /// vocabulary (or never within α of any place) yield an empty span.
  std::span<const Posting> TermPostings(TermId term) const;

  /// dg(entry, term) if term is inside the entry's α-radius WN.
  std::optional<uint32_t> EntryTermDistance(uint32_t entry,
                                            TermId term) const;

  /// Persists / restores the inverted WN file (the paper keeps it on
  /// disk; building it is by far the costliest preprocessing step).
  /// Save writes the checksummed v2 container atomically; Load verifies
  /// every section CRC and still reads v1 legacy files for one release.
  Status Save(const std::string& path, FileSystem* fs = nullptr,
              ArtifactInfo* info = nullptr) const;
  static Result<AlphaIndex> Load(const std::string& path,
                                 FileSystem* fs = nullptr);

  /// v1 writer kept only for legacy-read-window tests.
  Status SaveLegacyForTesting(const std::string& path) const;

  /// Total number of (term, entry) pairs across the file.
  uint64_t TotalEntries() const { return postings_.size(); }

  /// Bytes of the α-radius WN data (the Table 6 metric).
  uint64_t SizeBytes() const {
    return postings_.capacity() * sizeof(Posting) +
           offsets_.capacity() * sizeof(uint64_t);
  }

 private:
  AlphaIndex() = default;

  static Result<AlphaIndex> LoadLegacy(const std::string& path);

  uint32_t alpha_ = 0;
  uint32_t num_places_ = 0;
  uint32_t num_nodes_ = 0;
  /// CSR: per-term slice of postings_.
  std::vector<uint64_t> offsets_;
  std::vector<Posting> postings_;
};

}  // namespace ksp

#endif  // KSP_ALPHA_ALPHA_INDEX_H_
