#include "rdf/kb_io.h"

#include <cstdio>
#include <cstring>

#include "common/varint.h"
#include "rdf/graph.h"
#include "text/document_store.h"

namespace ksp {

namespace {
constexpr uint32_t kMagic = 0x4B53504Bu;  // "KSPK"
constexpr uint32_t kLegacyVersion = 1;
constexpr uint32_t kSnapshotVersion = 2;

Status WriteAll(std::FILE* f, std::string_view data) {
  if (std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    return Status::IOError("short write");
  }
  return Status::OK();
}
}  // namespace

/// Friend of KnowledgeBase: assembles a KB from deserialized state.
class KnowledgeBaseSnapshotAccess {
 public:
  /// Varint-packed snapshot body — identical between v1 and v2; only the
  /// outer framing differs.
  static std::string SerializeBody(const KnowledgeBase& kb) {
    std::string buf;

    // Vocabulary and predicate dictionary, in id order.
    PutVarint64(&buf, kb.terms_.size());
    for (TermId t = 0; t < kb.terms_.size(); ++t) {
      PutLengthPrefixed(&buf, kb.terms_.Term(t));
    }
    PutVarint64(&buf, kb.predicates_.size());
    for (PredicateId p = 0; p < kb.predicates_.size(); ++p) {
      PutLengthPrefixed(&buf, kb.predicates_.Term(p));
    }

    // Vertex IRIs.
    const VertexId n = kb.num_vertices();
    PutVarint64(&buf, n);
    for (VertexId v = 0; v < n; ++v) {
      PutLengthPrefixed(&buf, kb.iris_[v]);
    }

    // Documents: per-vertex delta-encoded sorted term lists.
    for (VertexId v = 0; v < n; ++v) {
      auto terms = kb.documents_.Terms(v);
      PutVarint64(&buf, terms.size());
      TermId prev = 0;
      for (size_t i = 0; i < terms.size(); ++i) {
        PutVarint64(&buf, i == 0 ? terms[i] : terms[i] - prev);
        prev = terms[i];
      }
    }

    // Out-edges with predicates.
    PutVarint64(&buf, kb.graph_.num_edges());
    for (VertexId v = 0; v < n; ++v) {
      auto targets = kb.graph_.OutNeighbors(v);
      auto preds = kb.graph_.OutPredicates(v);
      PutVarint64(&buf, targets.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        PutVarint64(&buf, targets[i]);
        PutVarint64(&buf, preds[i]);
      }
    }

    // Places.
    PutVarint64(&buf, kb.place_vertices_.size());
    for (PlaceId p = 0; p < kb.place_vertices_.size(); ++p) {
      PutVarint64(&buf, kb.place_vertices_[p]);
      Point location = kb.place_locations_[p];
      uint64_t x_bits;
      uint64_t y_bits;
      static_assert(sizeof(double) == 8);
      std::memcpy(&x_bits, &location.x, 8);
      std::memcpy(&y_bits, &location.y, 8);
      PutFixed64(&buf, x_bits);
      PutFixed64(&buf, y_bits);
    }
    return buf;
  }

  /// Parses a snapshot body; `*pos` starts at the body's first byte and
  /// must land exactly at `body.size()` for the caller's framing checks.
  static Result<std::unique_ptr<KnowledgeBase>> ParseBody(
      std::string_view buf, size_t* pos) {
    auto kb = std::unique_ptr<KnowledgeBase>(new KnowledgeBase());

    uint64_t num_terms = 0;
    KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &num_terms));
    std::string term;
    for (uint64_t t = 0; t < num_terms; ++t) {
      KSP_RETURN_NOT_OK(GetLengthPrefixed(buf, pos, &term));
      kb->terms_.Intern(term);
    }
    uint64_t num_predicates = 0;
    KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &num_predicates));
    for (uint64_t p = 0; p < num_predicates; ++p) {
      KSP_RETURN_NOT_OK(GetLengthPrefixed(buf, pos, &term));
      kb->predicates_.Intern(term);
    }

    uint64_t n = 0;
    KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &n));
    // Each IRI needs at least a one-byte length prefix; a corrupt vertex
    // count must not drive a multi-GB resize.
    if (n > buf.size() - *pos) {
      return Status::Corruption("vertex count exceeds snapshot size");
    }
    kb->iris_.resize(n);
    for (uint64_t v = 0; v < n; ++v) {
      KSP_RETURN_NOT_OK(GetLengthPrefixed(buf, pos, &kb->iris_[v]));
      kb->iri_index_.emplace(kb->iris_[v], static_cast<VertexId>(v));
    }

    DocumentStoreBuilder docs;
    for (uint64_t v = 0; v < n; ++v) {
      uint64_t count = 0;
      KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &count));
      uint64_t prev = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &delta));
        prev = (i == 0) ? delta : prev + delta;
        if (prev >= num_terms) {
          return Status::Corruption("document term id out of range");
        }
        docs.AddTerm(static_cast<VertexId>(v), static_cast<TermId>(prev));
      }
    }
    kb->documents_ = docs.Finish(static_cast<VertexId>(n));

    uint64_t num_edges = 0;
    KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &num_edges));
    GraphBuilder graph;
    for (uint64_t v = 0; v < n; ++v) {
      uint64_t degree = 0;
      KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &degree));
      for (uint64_t i = 0; i < degree; ++i) {
        uint64_t target = 0;
        uint64_t predicate = 0;
        KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &target));
        KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &predicate));
        if (target >= n || predicate >= num_predicates) {
          return Status::Corruption("edge target or predicate out of range");
        }
        graph.AddEdge(static_cast<VertexId>(v),
                      static_cast<VertexId>(target),
                      static_cast<PredicateId>(predicate));
      }
    }
    if (graph.num_pending_edges() != num_edges) {
      return Status::Corruption("edge count mismatch");
    }
    kb->graph_ = graph.Finish(static_cast<VertexId>(n));

    uint64_t num_places = 0;
    KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &num_places));
    kb->place_of_vertex_.assign(n, kInvalidPlace);
    for (uint64_t p = 0; p < num_places; ++p) {
      uint64_t vertex = 0;
      KSP_RETURN_NOT_OK(GetVarint64(buf, pos, &vertex));
      uint64_t x_bits = 0;
      uint64_t y_bits = 0;
      KSP_RETURN_NOT_OK(GetFixed64(buf, pos, &x_bits));
      KSP_RETURN_NOT_OK(GetFixed64(buf, pos, &y_bits));
      Point location;
      std::memcpy(&location.x, &x_bits, 8);
      std::memcpy(&location.y, &y_bits, 8);
      if (vertex >= n) return Status::Corruption("place vertex oob");
      kb->place_of_vertex_[vertex] = static_cast<PlaceId>(p);
      kb->place_vertices_.push_back(static_cast<VertexId>(vertex));
      kb->place_locations_.push_back(location);
    }

    kb->inverted_index_ = MemoryInvertedIndex::Build(
        kb->documents_, static_cast<TermId>(kb->terms_.size()));
    return kb;
  }

  static Status Save(const KnowledgeBase& kb, const std::string& path,
                     FileSystem* fs, ArtifactInfo* info) {
    if (fs == nullptr) fs = DefaultFileSystem();
    return WriteArtifactAtomically(
        fs, path, kMagic, kSnapshotVersion,
        [&kb](ChecksummedWriter* w) {
          return w->WriteSection(SerializeBody(kb));
        },
        info);
  }

  static Status SaveLegacy(const KnowledgeBase& kb,
                           const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IOError("cannot open: " + path);
    std::string buf;
    PutFixed32(&buf, kMagic);
    PutFixed32(&buf, kLegacyVersion);
    buf += SerializeBody(kb);
    PutFixed32(&buf, kMagic);
    Status st = WriteAll(f, buf);
    if (std::fclose(f) != 0 && st.ok()) {
      st = Status::IOError("close failed: " + path);
    }
    return st;
  }

  static Result<std::unique_ptr<KnowledgeBase>> Load(
      const std::string& path, FileSystem* fs) {
    if (fs == nullptr) fs = DefaultFileSystem();
    auto file = fs->NewRandomAccessFile(path);
    if (!file.ok()) return file.status();
    auto checksummed = IsChecksummedFile(**file);
    if (!checksummed.ok()) return checksummed.status();

    if (*checksummed) {
      ChecksummedReader reader(file->get());
      uint32_t version = 0;
      KSP_RETURN_NOT_OK(reader.Open(kMagic, &version));
      if (version != kSnapshotVersion) {
        return CorruptionAt(path, 4,
                            "unsupported snapshot format version " +
                                std::to_string(version));
      }
      std::string body;
      const uint64_t body_offset = reader.offset();
      KSP_RETURN_NOT_OK(reader.ReadSection(&body));
      KSP_RETURN_NOT_OK(reader.ExpectEnd());
      size_t pos = 0;
      auto kb = ParseBody(body, &pos);
      if (!kb.ok()) {
        return CorruptionAt(path, body_offset, kb.status().message());
      }
      if (pos != body.size()) {
        return CorruptionAt(path, body_offset + pos,
                            "trailing bytes in snapshot body");
      }
      return kb;
    }

    // Legacy v1: magic u32, version u32, body, magic footer — no CRC.
    std::string buf;
    KSP_RETURN_NOT_OK((*file)->Read(0, (*file)->Size(), &buf));
    if (buf.size() != (*file)->Size()) {
      return Status::IOError("short read: " + path);
    }
    size_t pos = 0;
    uint32_t magic = 0;
    uint32_t version = 0;
    KSP_RETURN_NOT_OK(GetFixed32(buf, &pos, &magic));
    KSP_RETURN_NOT_OK(GetFixed32(buf, &pos, &version));
    if (magic != kMagic) return Status::Corruption("bad magic: " + path);
    if (version != kLegacyVersion) {
      return Status::Corruption("unsupported snapshot version");
    }
    auto kb = ParseBody(buf, &pos);
    if (!kb.ok()) return kb.status();
    uint32_t footer = 0;
    KSP_RETURN_NOT_OK(GetFixed32(buf, &pos, &footer));
    if (footer != kMagic || pos != buf.size()) {
      return Status::Corruption("bad snapshot footer");
    }
    return kb;
  }
};

Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path,
                         FileSystem* fs, ArtifactInfo* info) {
  return KnowledgeBaseSnapshotAccess::Save(kb, path, fs, info);
}

Status SaveKnowledgeBaseLegacyForTesting(const KnowledgeBase& kb,
                                         const std::string& path) {
  return KnowledgeBaseSnapshotAccess::SaveLegacy(kb, path);
}

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseSnapshot(
    const std::string& path, FileSystem* fs) {
  return KnowledgeBaseSnapshotAccess::Load(path, fs);
}

}  // namespace ksp
