#ifndef KSP_RDF_TRIPLE_H_
#define KSP_RDF_TRIPLE_H_

#include <string>

namespace ksp {

/// Kind of a triple's object term.
enum class ObjectKind {
  kIri,      // <http://...> — another entity.
  kLiteral,  // "value", "value"@lang, or "value"^^<datatype>.
};

/// One parsed RDF triple. Subject and predicate are IRIs (without angle
/// brackets); the object is an IRI or a literal with optional language tag
/// or datatype IRI.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;
  ObjectKind object_kind = ObjectKind::kIri;
  /// Language tag (without '@') if the object is a tagged literal.
  std::string language;
  /// Datatype IRI (without brackets) if the object is a typed literal.
  std::string datatype;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object && a.object_kind == b.object_kind &&
           a.language == b.language && a.datatype == b.datatype;
  }
};

}  // namespace ksp

#endif  // KSP_RDF_TRIPLE_H_
