#ifndef KSP_RDF_GRAPH_H_
#define KSP_RDF_GRAPH_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace ksp {

class Graph;

/// Id of a predicate string in the KB's predicate dictionary.
using PredicateId = uint32_t;

/// Collects directed edges, then freezes them into a CSR Graph.
/// Duplicate (src, dst, predicate) edges are removed at Finish().
class GraphBuilder {
 public:
  void AddEdge(VertexId src, VertexId dst, PredicateId predicate);

  /// Number of edges added so far (before dedup).
  uint64_t num_pending_edges() const { return edges_.size(); }

  Graph Finish(VertexId num_vertices);

 private:
  struct Edge {
    VertexId src;
    VertexId dst;
    PredicateId predicate;
  };
  std::vector<Edge> edges_;
};

/// Immutable directed graph in native adjacency (CSR) form, with both
/// out- and in-adjacency, as required for forward BFS (TQSP construction)
/// and backward expansion (the TA baseline). Edge predicates are kept in
/// arrays parallel to the out-neighbour lists.
class Graph {
 public:
  Graph() = default;

  VertexId num_vertices() const {
    return static_cast<VertexId>(
        out_offsets_.empty() ? 0 : out_offsets_.size() - 1);
  }
  uint64_t num_edges() const { return out_targets_.size(); }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  std::span<const PredicateId> OutPredicates(VertexId v) const {
    return {out_predicates_.data() + out_offsets_[v],
            out_predicates_.data() + out_offsets_[v + 1]};
  }
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Software-prefetches v's adjacency metadata and the head of its
  /// target span — the BFS frontier look-ahead hook (no-op without GCC/
  /// Clang builtins). The offset load the target prefetch depends on is
  /// issued several pops before the span is consumed, so out-of-order
  /// execution overlaps both misses with useful work.
  void PrefetchOut(VertexId v) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(out_offsets_.data() + v, 0, 3);
    __builtin_prefetch(out_targets_.data() + out_offsets_[v], 0, 1);
#endif
  }
  void PrefetchIn(VertexId v) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(in_offsets_.data() + v, 0, 3);
    __builtin_prefetch(in_sources_.data() + in_offsets_[v], 0, 1);
#endif
  }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  uint64_t MemoryUsageBytes() const;

  /// Weakly-connected-component sizes in decreasing order (the dataset
  /// statistic reported in §6.1).
  std::vector<uint64_t> WeaklyConnectedComponentSizes() const;

 private:
  friend class GraphBuilder;
  std::vector<uint64_t> out_offsets_;  // size n+1
  std::vector<VertexId> out_targets_;
  std::vector<PredicateId> out_predicates_;
  std::vector<uint64_t> in_offsets_;  // size n+1
  std::vector<VertexId> in_sources_;
};

}  // namespace ksp

#endif  // KSP_RDF_GRAPH_H_
