#include "rdf/knowledge_base.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "rdf/ntriples_parser.h"
#include "rdf/turtle_parser.h"

namespace ksp {

namespace {

/// Parses a double strictly; returns nullopt on garbage.
std::optional<double> ParseDouble(std::string_view s) {
  std::string buf(TrimWhitespace(s));
  if (buf.empty()) return std::nullopt;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

KnowledgeBaseBuilder::KnowledgeBaseBuilder(KnowledgeBaseOptions options)
    : options_(std::move(options)), tokenizer_(options_.tokenizer) {}

VertexId KnowledgeBaseBuilder::AddEntity(std::string_view iri) {
  std::string key(StripAngleBrackets(iri));
  auto it = iri_index_.find(key);
  if (it != iri_index_.end()) return it->second;
  VertexId v = static_cast<VertexId>(iris_.size());
  iris_.push_back(key);
  iri_index_.emplace(std::move(key), v);
  // The vertex's URI local name seeds its document (as in [43]).
  for (const auto& token : tokenizer_.TokenizeUriLocalName(iris_[v])) {
    docs_.AddTerm(v, terms_.Intern(token));
  }
  return v;
}

void KnowledgeBaseBuilder::AddDocumentText(VertexId vertex,
                                           std::string_view text) {
  for (const auto& token : tokenizer_.Tokenize(text)) {
    docs_.AddTerm(vertex, terms_.Intern(token));
  }
}

void KnowledgeBaseBuilder::AddDocumentTerm(VertexId vertex,
                                           std::string_view term) {
  docs_.AddTerm(vertex, terms_.Intern(term));
}

PredicateId KnowledgeBaseBuilder::InternPredicate(std::string_view iri) {
  return predicates_.Intern(StripAngleBrackets(iri));
}

void KnowledgeBaseBuilder::AddRelation(VertexId src, VertexId dst,
                                       std::string_view predicate_iri) {
  PredicateId pid = InternPredicate(predicate_iri);
  graph_.AddEdge(src, dst, pid);
  // Predicate description enriches the *object* document (§2).
  for (const auto& token : tokenizer_.TokenizeUriLocalName(predicate_iri)) {
    docs_.AddTerm(dst, terms_.Intern(token));
  }
}

void KnowledgeBaseBuilder::SetLocation(VertexId vertex,
                                       const Point& location) {
  locations_[vertex] = location;
}

bool KnowledgeBaseBuilder::IsIgnoredPredicate(
    std::string_view local_name) const {
  for (const auto& name : options_.ignored_predicate_local_names) {
    if (EqualsIgnoreCase(local_name, name)) return true;
  }
  return false;
}

bool KnowledgeBaseBuilder::IsTypePredicate(std::string_view local_name) const {
  for (const auto& name : options_.type_predicate_local_names) {
    if (EqualsIgnoreCase(local_name, name)) return true;
  }
  return false;
}

bool KnowledgeBaseBuilder::TryConsumeSpatialTriple(
    VertexId subject, std::string_view predicate_local,
    const Triple& triple) {
  if (triple.object_kind != ObjectKind::kLiteral) return false;

  if (EqualsIgnoreCase(predicate_local, "lat") ||
      EqualsIgnoreCase(predicate_local, "latitude")) {
    if (auto v = ParseDouble(triple.object)) {
      pending_coords_[subject].first = *v;
      return true;
    }
    return false;
  }
  if (EqualsIgnoreCase(predicate_local, "long") ||
      EqualsIgnoreCase(predicate_local, "lng") ||
      EqualsIgnoreCase(predicate_local, "longitude")) {
    if (auto v = ParseDouble(triple.object)) {
      pending_coords_[subject].second = *v;
      return true;
    }
    return false;
  }
  if (EqualsIgnoreCase(predicate_local, "point")) {
    // georss:point "lat long".
    auto parts = SplitAny(triple.object, " \t,");
    if (parts.size() == 2) {
      auto lat = ParseDouble(parts[0]);
      auto lon = ParseDouble(parts[1]);
      if (lat && lon) {
        locations_[subject] = Point{*lat, *lon};
        return true;
      }
    }
    return false;
  }
  if (EqualsIgnoreCase(predicate_local, "hasGeometry") ||
      EqualsIgnoreCase(predicate_local, "asWKT") ||
      EqualsIgnoreCase(predicate_local, "geometry")) {
    // WKT "POINT(lon lat)" (GeoSPARQL axis order).
    std::string body(TrimWhitespace(triple.object));
    std::string lower = AsciiToLower(body);
    size_t open = lower.find("point");
    if (open == std::string::npos) return false;
    size_t lparen = body.find('(', open);
    size_t rparen = body.find(')', open);
    if (lparen == std::string::npos || rparen == std::string::npos ||
        rparen <= lparen) {
      return false;
    }
    auto parts =
        SplitAny(std::string_view(body).substr(lparen + 1, rparen - lparen - 1),
                 " \t,");
    if (parts.size() == 2) {
      auto lon = ParseDouble(parts[0]);
      auto lat = ParseDouble(parts[1]);
      if (lat && lon) {
        locations_[subject] = Point{*lat, *lon};
        return true;
      }
    }
    return false;
  }
  return false;
}

void KnowledgeBaseBuilder::AddTriple(const Triple& triple) {
  std::string_view predicate_local = UriLocalName(triple.predicate);
  if (IsIgnoredPredicate(predicate_local)) return;

  VertexId subject = AddEntity(triple.subject);

  if (triple.object_kind == ObjectKind::kLiteral) {
    if (TryConsumeSpatialTriple(subject, predicate_local, triple)) return;
    // Literal folds into the subject's document together with the
    // predicate description.
    AddDocumentText(subject, triple.object);
    for (const auto& token : tokenizer_.TokenizeUriLocalName(
             triple.predicate)) {
      docs_.AddTerm(subject, terms_.Intern(token));
    }
    return;
  }

  if (IsTypePredicate(predicate_local)) {
    // Type assertion: fold the type IRI's tokens into the subject doc.
    for (const auto& token : tokenizer_.TokenizeUriLocalName(triple.object)) {
      docs_.AddTerm(subject, terms_.Intern(token));
    }
    return;
  }

  VertexId object = AddEntity(triple.object);
  AddRelation(subject, object, triple.predicate);
}

Result<std::unique_ptr<KnowledgeBase>> KnowledgeBaseBuilder::Finish() {
  // Merge pending lat/long pairs into locations.
  for (const auto& [vertex, coords] : pending_coords_) {
    if (coords.first && coords.second &&
        locations_.find(vertex) == locations_.end()) {
      locations_[vertex] = Point{*coords.first, *coords.second};
    }
  }
  pending_coords_.clear();

  auto kb = std::unique_ptr<KnowledgeBase>(new KnowledgeBase());
  const VertexId n = num_vertices();
  kb->graph_ = graph_.Finish(n);
  kb->documents_ = docs_.Finish(n);
  kb->terms_ = std::move(terms_);
  kb->predicates_ = std::move(predicates_);
  kb->iris_ = std::move(iris_);
  kb->iri_index_ = std::move(iri_index_);

  kb->place_of_vertex_.assign(n, kInvalidPlace);
  // Deterministic place ordering: ascending vertex id.
  std::vector<VertexId> place_vertices;
  place_vertices.reserve(locations_.size());
  for (const auto& [vertex, location] : locations_) {
    (void)location;
    place_vertices.push_back(vertex);
  }
  std::sort(place_vertices.begin(), place_vertices.end());
  for (VertexId v : place_vertices) {
    PlaceId p = static_cast<PlaceId>(kb->place_vertices_.size());
    kb->place_vertices_.push_back(v);
    kb->place_locations_.push_back(locations_[v]);
    kb->place_of_vertex_[v] = p;
  }

  kb->inverted_index_ = MemoryInvertedIndex::Build(
      kb->documents_, static_cast<TermId>(kb->terms_.size()));
  return kb;
}

std::optional<VertexId> KnowledgeBase::FindVertex(
    std::string_view iri) const {
  auto it = iri_index_.find(std::string(StripAngleBrackets(iri)));
  if (it == iri_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<TermId> KnowledgeBase::LookupTerms(
    const std::vector<std::string>& keywords) const {
  std::vector<TermId> out;
  out.reserve(keywords.size());
  for (const auto& kw : keywords) {
    auto id = terms_.Lookup(AsciiToLower(kw));
    out.push_back(id.has_value() ? *id : kInvalidTerm);
  }
  return out;
}

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromFile(
    const std::string& path, KnowledgeBaseOptions options) {
  KnowledgeBaseBuilder builder(std::move(options));
  NTriplesParser parser;
  auto count = parser.ParseFile(
      path, [&](const Triple& t) { builder.AddTriple(t); });
  if (!count.ok()) return count.status();
  return builder.Finish();
}

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromString(
    std::string_view ntriples, KnowledgeBaseOptions options) {
  KnowledgeBaseBuilder builder(std::move(options));
  NTriplesParser parser;
  auto count = parser.ParseString(
      ntriples, [&](const Triple& t) { builder.AddTriple(t); });
  if (!count.ok()) return count.status();
  return builder.Finish();
}

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromTurtleFile(
    const std::string& path, KnowledgeBaseOptions options) {
  KnowledgeBaseBuilder builder(std::move(options));
  TurtleParser parser;
  auto count = parser.ParseFile(
      path, [&](const Triple& t) { builder.AddTriple(t); });
  if (!count.ok()) return count.status();
  return builder.Finish();
}

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromTurtleString(
    std::string_view turtle, KnowledgeBaseOptions options) {
  KnowledgeBaseBuilder builder(std::move(options));
  TurtleParser parser;
  auto count = parser.ParseString(
      turtle, [&](const Triple& t) { builder.AddTriple(t); });
  if (!count.ok()) return count.status();
  return builder.Finish();
}

}  // namespace ksp
