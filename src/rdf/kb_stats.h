#ifndef KSP_RDF_KB_STATS_H_
#define KSP_RDF_KB_STATS_H_

#include <string>
#include <vector>

#include "rdf/knowledge_base.h"

namespace ksp {

/// The dataset statistics §6.1 reports for DBpedia and Yago: sizes, place
/// counts, vocabulary, keyword frequency (mean posting length), and the
/// weakly-connected-component structure.
struct KnowledgeBaseStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_places = 0;
  uint64_t num_terms = 0;
  uint64_t total_postings = 0;
  /// Mean posting-list length over non-empty terms.
  double keyword_frequency = 0.0;
  double avg_document_length = 0.0;
  double avg_out_degree = 0.0;
  double place_fraction = 0.0;
  /// WCC sizes, descending.
  std::vector<uint64_t> wcc_sizes;

  uint64_t LargestWcc() const {
    return wcc_sizes.empty() ? 0 : wcc_sizes.front();
  }
  uint64_t NumWccs() const { return wcc_sizes.size(); }

  /// Multi-line human-readable summary in the style of §6.1.
  std::string ToString() const;
};

/// Computes all statistics (runs a union-find pass for the WCCs).
KnowledgeBaseStats ComputeKnowledgeBaseStats(const KnowledgeBase& kb);

}  // namespace ksp

#endif  // KSP_RDF_KB_STATS_H_
