#ifndef KSP_RDF_KNOWLEDGE_BASE_H_
#define KSP_RDF_KNOWLEDGE_BASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "rdf/graph.h"
#include "rdf/triple.h"
#include "spatial/geometry.h"
#include "text/document_store.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ksp {

class KnowledgeBase;

/// Options controlling how raw triples become the simplified keyword-search
/// graph of [43] (§1 and §2 of the paper).
struct KnowledgeBaseOptions {
  TokenizerOptions tokenizer;

  /// Predicates whose local name is listed here produce no edge and no
  /// document terms — the paper removes "sameAs", "linksTo" and
  /// "redirectTo" edges as semantically meaningless.
  std::vector<std::string> ignored_predicate_local_names = {
      "sameAs", "linksTo", "redirectTo", "wikiPageRedirects",
      "wikiPageDisambiguates"};

  /// Predicates treated as type assertions: the object IRI is folded into
  /// the subject's document instead of creating an edge.
  std::vector<std::string> type_predicate_local_names = {"type"};
};

/// Builds a KnowledgeBase either from parsed RDF triples (AddTriple) or
/// programmatically (AddEntity / AddRelation / AddDocumentText /
/// SetLocation). Both paths implement the paper's preprocessing:
///  - subject URI tokens and literal tokens form the subject's document ψ;
///  - for an entity-to-entity triple, the predicate's tokens are added to
///    the *object* entity's document;
///  - literal and type objects do not become vertices;
///  - vertices with coordinates (geo:lat/geo:long, georss:point, or WKT
///    "POINT(lon lat)") become place vertices.
class KnowledgeBaseBuilder {
 public:
  explicit KnowledgeBaseBuilder(KnowledgeBaseOptions options = {});

  /// Returns the vertex for `iri`, creating it (and tokenizing its local
  /// name into its document) on first sight.
  VertexId AddEntity(std::string_view iri);

  /// Tokenizes `text` and appends the tokens to the document of `vertex`.
  void AddDocumentText(VertexId vertex, std::string_view text);

  /// Adds one pre-tokenized keyword to the document of `vertex`.
  void AddDocumentTerm(VertexId vertex, std::string_view term);

  /// Adds a directed edge src -> dst labelled with `predicate_iri`; the
  /// predicate's tokens are appended to dst's document per the paper.
  void AddRelation(VertexId src, VertexId dst, std::string_view predicate_iri);

  /// Declares `vertex` a place located at `location`.
  void SetLocation(VertexId vertex, const Point& location);

  /// Routes one parsed triple through the rules above.
  void AddTriple(const Triple& triple);

  VertexId num_vertices() const {
    return static_cast<VertexId>(iris_.size());
  }

  /// Freezes everything into an immutable KnowledgeBase.
  Result<std::unique_ptr<KnowledgeBase>> Finish();

 private:
  bool IsIgnoredPredicate(std::string_view local_name) const;
  bool IsTypePredicate(std::string_view local_name) const;
  /// Recognizes spatial predicates; returns true if consumed.
  bool TryConsumeSpatialTriple(VertexId subject,
                               std::string_view predicate_local,
                               const Triple& triple);
  PredicateId InternPredicate(std::string_view iri);

  KnowledgeBaseOptions options_;
  Tokenizer tokenizer_;
  std::vector<std::string> iris_;
  std::unordered_map<std::string, VertexId> iri_index_;
  Vocabulary terms_;
  Vocabulary predicates_;
  DocumentStoreBuilder docs_;
  GraphBuilder graph_;
  /// Partially observed coordinates (lat/long arrive in separate triples).
  std::unordered_map<VertexId, std::pair<std::optional<double>,
                                         std::optional<double>>>
      pending_coords_;
  std::unordered_map<VertexId, Point> locations_;
};

/// Immutable spatial RDF knowledge base: the native-form graph, the term
/// dictionary, the per-vertex documents, the place registry, and the
/// (memory) inverted index over documents. This is the input to all kSP
/// search engines.
class KnowledgeBase {
 public:
  const Graph& graph() const { return graph_; }
  const Vocabulary& vocabulary() const { return terms_; }
  const Vocabulary& predicate_dictionary() const { return predicates_; }
  const DocumentStore& documents() const { return documents_; }
  const MemoryInvertedIndex& inverted_index() const {
    return inverted_index_;
  }

  VertexId num_vertices() const { return graph_.num_vertices(); }
  uint64_t num_edges() const { return graph_.num_edges(); }
  TermId num_terms() const { return static_cast<TermId>(terms_.size()); }

  /// ---- Place registry ----
  uint32_t num_places() const {
    return static_cast<uint32_t>(place_vertices_.size());
  }
  VertexId place_vertex(PlaceId p) const { return place_vertices_[p]; }
  Point place_location(PlaceId p) const { return place_locations_[p]; }
  /// kInvalidPlace if `v` is not a place.
  PlaceId place_of(VertexId v) const { return place_of_vertex_[v]; }
  bool IsPlace(VertexId v) const {
    return place_of_vertex_[v] != kInvalidPlace;
  }

  const std::string& VertexIri(VertexId v) const { return iris_[v]; }
  /// Vertex id of an IRI, if present.
  std::optional<VertexId> FindVertex(std::string_view iri) const;

  /// Looks up the TermIds of keyword strings; unknown keywords map to
  /// kInvalidTerm (their posting lists are empty).
  std::vector<TermId> LookupTerms(
      const std::vector<std::string>& keywords) const;

  uint64_t GraphMemoryBytes() const { return graph_.MemoryUsageBytes(); }
  uint64_t InvertedIndexBytes() const { return inverted_index_.SizeBytes(); }

 private:
  friend class KnowledgeBaseBuilder;
  // Snapshot serialization (rdf/kb_io.cc) reconstructs the private state
  // bit-exactly without re-tokenizing.
  friend class KnowledgeBaseSnapshotAccess;
  KnowledgeBase() = default;

  Graph graph_;
  Vocabulary terms_;
  Vocabulary predicates_;
  DocumentStore documents_;
  MemoryInvertedIndex inverted_index_;
  std::vector<std::string> iris_;
  std::unordered_map<std::string, VertexId> iri_index_;
  std::vector<VertexId> place_vertices_;
  std::vector<Point> place_locations_;
  std::vector<PlaceId> place_of_vertex_;
};

/// Convenience: parses an N-Triples file and builds a KnowledgeBase.
Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromFile(
    const std::string& path, KnowledgeBaseOptions options = {});

/// Convenience: same, from an in-memory N-Triples document.
Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromString(
    std::string_view ntriples, KnowledgeBaseOptions options = {});

/// Convenience: parses Turtle (see rdf/turtle_parser.h) and builds a KB.
Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromTurtleFile(
    const std::string& path, KnowledgeBaseOptions options = {});

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseFromTurtleString(
    std::string_view turtle, KnowledgeBaseOptions options = {});

}  // namespace ksp

#endif  // KSP_RDF_KNOWLEDGE_BASE_H_
