#ifndef KSP_RDF_NTRIPLES_PARSER_H_
#define KSP_RDF_NTRIPLES_PARSER_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rdf/triple.h"

namespace ksp {

/// Streaming parser for the N-Triples subset used by DBpedia/Yago dumps:
///   <subj> <pred> <obj> .
///   <subj> <pred> "literal" .
///   <subj> <pred> "literal"@lang .
///   <subj> <pred> "literal"^^<datatype> .
/// Blank lines and '#' comment lines are skipped. Literal escapes
/// (\" \\ \n \r \t \uXXXX \UXXXXXXXX) are decoded. Blank nodes (_:x) are
/// accepted and treated as IRIs with the "_:" prefix retained.
class NTriplesParser {
 public:
  struct Options {
    /// If true, a malformed line aborts parsing with a Status carrying the
    /// line number; if false, malformed lines are counted and skipped.
    bool strict = true;
  };

  NTriplesParser() : NTriplesParser(Options()) {}
  explicit NTriplesParser(Options options);

  /// Parses a single logical line. Returns InvalidArgument with context on
  /// syntax errors. The line must not contain the trailing newline.
  Result<Triple> ParseLine(std::string_view line) const;

  /// True if the line holds no triple (blank or comment).
  static bool IsBlankOrComment(std::string_view line);

  /// Parses a whole file, invoking `sink` per triple. Returns the number of
  /// triples parsed; in non-strict mode malformed lines are skipped and
  /// counted in `*malformed_lines` (optional).
  Result<uint64_t> ParseFile(
      const std::string& path,
      const std::function<void(const Triple&)>& sink,
      uint64_t* malformed_lines = nullptr) const;

  /// Parses an in-memory document of newline-separated triples.
  Result<uint64_t> ParseString(
      std::string_view text, const std::function<void(const Triple&)>& sink,
      uint64_t* malformed_lines = nullptr) const;

 private:
  Options options_;
};

/// Serializes a triple back to one N-Triples line (escaping literals).
std::string ToNTriplesLine(const Triple& triple);

}  // namespace ksp

#endif  // KSP_RDF_NTRIPLES_PARSER_H_
