#ifndef KSP_RDF_TURTLE_PARSER_H_
#define KSP_RDF_TURTLE_PARSER_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "rdf/triple.h"

namespace ksp {

/// Parser for the Turtle subset real knowledge-base dumps use (DBpedia
/// ships Turtle; N-Triples is its degenerate form):
///
///   @prefix dbo: <http://dbpedia.org/ontology/> .
///   PREFIX dbr: <http://dbpedia.org/resource/>        # SPARQL style
///   @base <http://dbpedia.org/resource/> .
///   dbr:Montmajour_Abbey a dbo:Monastery ;
///       dbo:dedication dbr:Saint_Peter , dbr:Mary ;
///       rdfs:label "Montmajour Abbey"@en ;
///       geo:lat "43.71"^^xsd:double .
///
/// Supported: prefixed names, 'a' (rdf:type), ';' predicate lists, ','
/// object lists, relative IRIs against @base, literals with escapes /
/// language tags / datatypes, bare numeric and boolean literals, '#'
/// comments, blank node labels (_:x). Not supported (rejected with a
/// position-carrying error): anonymous blank nodes '[...]', collections
/// '(...)', multi-line """literals""".
class TurtleParser {
 public:
  struct Options {
    /// Abort on the first syntax error (true) or skip to the next '.' and
    /// count the statement as malformed (false).
    bool strict = true;
  };

  TurtleParser() : TurtleParser(Options()) {}
  explicit TurtleParser(Options options);

  /// Parses a whole Turtle document, invoking `sink` per expanded triple.
  /// Returns the number of triples emitted.
  Result<uint64_t> ParseString(
      std::string_view text, const std::function<void(const Triple&)>& sink,
      uint64_t* malformed_statements = nullptr) const;

  Result<uint64_t> ParseFile(
      const std::string& path,
      const std::function<void(const Triple&)>& sink,
      uint64_t* malformed_statements = nullptr) const;

 private:
  Options options_;
};

}  // namespace ksp

#endif  // KSP_RDF_TURTLE_PARSER_H_
