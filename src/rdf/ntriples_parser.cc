#include "rdf/ntriples_parser.h"

#include <cstdio>
#include <fstream>

#include "common/strings.h"

namespace ksp {

namespace {

/// Cursor over one line with error reporting helpers.
class LineCursor {
 public:
  explicit LineCursor(std::string_view line) : line_(line) {}

  void SkipWhitespace() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= line_.size(); }
  char Peek() const { return line_[pos_]; }
  void Advance() { ++pos_; }
  size_t pos() const { return pos_; }
  std::string_view Remaining() const { return line_.substr(pos_); }

  /// Consumes "<...>" and returns the IRI body.
  Result<std::string> ReadIri() {
    if (AtEnd() || Peek() != '<') {
      return Status::InvalidArgument("expected '<' at column " +
                                     std::to_string(pos_));
    }
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != '>') Advance();
    if (AtEnd()) {
      return Status::InvalidArgument("unterminated IRI");
    }
    std::string iri(line_.substr(start, pos_ - start));
    Advance();  // consume '>'
    return iri;
  }

  /// Consumes a blank-node label "_:name".
  Result<std::string> ReadBlankNode() {
    size_t start = pos_;
    pos_ += 2;  // "_:"
    while (!AtEnd() && Peek() != ' ' && Peek() != '\t') Advance();
    return std::string(line_.substr(start, pos_ - start));
  }

  /// Consumes a quoted literal with escape decoding.
  Result<std::string> ReadLiteralBody() {
    Advance();  // consume opening quote
    std::string out;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '"') {
        Advance();
        return out;
      }
      if (c == '\\') {
        Advance();
        if (AtEnd()) return Status::InvalidArgument("dangling escape");
        char e = Peek();
        Advance();
        switch (e) {
          case 't':
            out.push_back('\t');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'u':
          case 'U': {
            size_t digits = (e == 'u') ? 4 : 8;
            if (pos_ + digits > line_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            uint32_t cp = 0;
            for (size_t i = 0; i < digits; ++i) {
              char h = line_[pos_ + i];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<uint32_t>(h - 'A' + 10);
              } else {
                return Status::InvalidArgument("bad hex digit in escape");
              }
            }
            pos_ += digits;
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Status::InvalidArgument(std::string("unknown escape \\") +
                                           e);
        }
        continue;
      }
      out.push_back(c);
      Advance();
    }
    return Status::InvalidArgument("unterminated literal");
  }

 private:
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp <= 0x7F) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string_view line_;
  size_t pos_ = 0;
};

}  // namespace

NTriplesParser::NTriplesParser(Options options) : options_(options) {}

bool NTriplesParser::IsBlankOrComment(std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  return trimmed.empty() || trimmed.front() == '#';
}

Result<Triple> NTriplesParser::ParseLine(std::string_view line) const {
  LineCursor cursor(line);
  Triple triple;

  cursor.SkipWhitespace();
  if (cursor.AtEnd()) return Status::InvalidArgument("empty line");
  if (cursor.Peek() == '_') {
    KSP_ASSIGN_OR_RETURN(triple.subject, cursor.ReadBlankNode());
  } else {
    KSP_ASSIGN_OR_RETURN(triple.subject, cursor.ReadIri());
  }

  cursor.SkipWhitespace();
  KSP_ASSIGN_OR_RETURN(triple.predicate, cursor.ReadIri());

  cursor.SkipWhitespace();
  if (cursor.AtEnd()) return Status::InvalidArgument("missing object");
  char first = cursor.Peek();
  if (first == '<') {
    KSP_ASSIGN_OR_RETURN(triple.object, cursor.ReadIri());
    triple.object_kind = ObjectKind::kIri;
  } else if (first == '_') {
    KSP_ASSIGN_OR_RETURN(triple.object, cursor.ReadBlankNode());
    triple.object_kind = ObjectKind::kIri;
  } else if (first == '"') {
    KSP_ASSIGN_OR_RETURN(triple.object, cursor.ReadLiteralBody());
    triple.object_kind = ObjectKind::kLiteral;
    if (!cursor.AtEnd() && cursor.Peek() == '@') {
      cursor.Advance();
      size_t start = cursor.pos();
      while (!cursor.AtEnd() && cursor.Peek() != ' ' &&
             cursor.Peek() != '\t') {
        cursor.Advance();
      }
      triple.language = std::string(line.substr(start, cursor.pos() - start));
    } else if (cursor.Remaining().size() >= 2 &&
               cursor.Remaining().substr(0, 2) == "^^") {
      cursor.Advance();
      cursor.Advance();
      KSP_ASSIGN_OR_RETURN(triple.datatype, cursor.ReadIri());
    }
  } else {
    return Status::InvalidArgument("unexpected object start '" +
                                   std::string(1, first) + "'");
  }

  cursor.SkipWhitespace();
  if (cursor.AtEnd() || cursor.Peek() != '.') {
    return Status::InvalidArgument("missing terminating '.'");
  }
  cursor.Advance();
  cursor.SkipWhitespace();
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("trailing garbage after '.'");
  }
  return triple;
}

Result<uint64_t> NTriplesParser::ParseString(
    std::string_view text, const std::function<void(const Triple&)>& sink,
    uint64_t* malformed_lines) const {
  uint64_t parsed = 0;
  uint64_t malformed = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    if (!IsBlankOrComment(line)) {
      auto result = ParseLine(line);
      if (result.ok()) {
        sink(result.value());
        ++parsed;
      } else if (options_.strict) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + result.status().message());
      } else {
        ++malformed;
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  if (malformed_lines != nullptr) *malformed_lines = malformed;
  return parsed;
}

Result<uint64_t> NTriplesParser::ParseFile(
    const std::string& path, const std::function<void(const Triple&)>& sink,
    uint64_t* malformed_lines) const {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  uint64_t parsed = 0;
  uint64_t malformed = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (IsBlankOrComment(line)) continue;
    auto result = ParseLine(line);
    if (result.ok()) {
      sink(result.value());
      ++parsed;
    } else if (options_.strict) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + result.status().message());
    } else {
      ++malformed;
    }
  }
  if (malformed_lines != nullptr) *malformed_lines = malformed;
  return parsed;
}

std::string ToNTriplesLine(const Triple& triple) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          out.push_back(c);
      }
    }
    return out;
  };

  std::string line;
  auto append_term = [&](const std::string& term) {
    if (StartsWith(term, "_:")) {
      line += term;
    } else {
      line += "<" + term + ">";
    }
  };
  append_term(triple.subject);
  line += " ";
  line += "<" + triple.predicate + ">";
  line += " ";
  if (triple.object_kind == ObjectKind::kIri) {
    append_term(triple.object);
  } else {
    line += "\"" + escape(triple.object) + "\"";
    if (!triple.language.empty()) {
      line += "@" + triple.language;
    } else if (!triple.datatype.empty()) {
      line += "^^<" + triple.datatype + ">";
    }
  }
  line += " .";
  return line;
}

}  // namespace ksp
