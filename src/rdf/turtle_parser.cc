#include "rdf/turtle_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace ksp {

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

inline bool IsPnChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' ||
         static_cast<unsigned char>(c) >= 0x80;  // UTF-8 continuation.
}

/// Stateful cursor over the whole document with prefix/base expansion.
class TurtleCursor {
 public:
  explicit TurtleCursor(std::string_view text) : text_(text) {}

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWhitespaceAndComments();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool TryChar(char c) {
    SkipWhitespaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes a case-insensitive bare word with a boundary check.
  bool TryWord(std::string_view word) {
    SkipWhitespaceAndComments();
    if (pos_ + word.size() > text_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    size_t after = pos_ + word.size();
    // Boundary: "a" must not swallow the start of "a:name" or "author".
    if (after < text_.size() &&
        ((IsPnChar(text_[after]) && text_[after] != '.') ||
         text_[after] == ':')) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  Status Error(std::string_view message) const {
    return Status::InvalidArgument("line " + std::to_string(line_) + ": " +
                                   std::string(message));
  }

  /// <...> with relative-IRI resolution against @base.
  Result<std::string> ReadIriRef() {
    if (!TryChar('<')) return Error("expected '<'");
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '>' &&
           text_[pos_] != '\n') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return Error("unterminated IRI");
    }
    std::string iri(text_.substr(start, pos_ - start));
    ++pos_;
    if (iri.find(':') == std::string::npos && !base_.empty()) {
      iri = base_ + iri;
    }
    return iri;
  }

  /// pre:Local or :Local; also bare blank node labels (_:x).
  Result<std::string> ReadPrefixedOrBlank() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (IsPnChar(text_[pos_]) || text_[pos_] == ':')) {
      ++pos_;
    }
    std::string_view token = text_.substr(start, pos_ - start);
    // A trailing '.' is the statement terminator, not part of the name.
    while (!token.empty() && token.back() == '.') {
      token.remove_suffix(1);
      --pos_;
    }
    if (token.empty()) return Error("expected a prefixed name");
    if (token.substr(0, 2) == "_:") return std::string(token);
    size_t colon = token.find(':');
    if (colon == std::string_view::npos) {
      return Error("'" + std::string(token) +
                   "' is not a prefixed name (missing ':')");
    }
    std::string prefix(token.substr(0, colon));
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("undeclared prefix '" + prefix + ":'");
    }
    return it->second + std::string(token.substr(colon + 1));
  }

  /// Any IRI-position term: IRIREF, prefixed name, or blank node.
  Result<std::string> ReadIri() {
    char c = Peek();
    if (c == '<') return ReadIriRef();
    if (c == '[') {
      return Error("anonymous blank nodes '[...]' are not supported");
    }
    if (c == '(') {
      return Error("RDF collections '(...)' are not supported");
    }
    return ReadPrefixedOrBlank();
  }

  /// "..." literal body with escape decoding ("""...""" rejected).
  Result<std::string> ReadStringBody() {
    ++pos_;  // Opening quote consumed by caller check.
    if (pos_ + 1 < text_.size() && text_[pos_] == '"' &&
        text_[pos_ + 1] == '"') {
      return Error("multi-line \"\"\"literals\"\"\" are not supported");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\n') return Error("newline inside literal");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case 't':
            out.push_back('\t');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case '"':
            out.push_back('"');
            break;
          case '\'':
            out.push_back('\'');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'u':
          case 'U': {
            size_t digits = (e == 'u') ? 4 : 8;
            if (pos_ + digits > text_.size()) {
              return Error("truncated unicode escape");
            }
            uint32_t cp = 0;
            for (size_t i = 0; i < digits; ++i) {
              char h = text_[pos_ + i];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<uint32_t>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in escape");
              }
            }
            pos_ += digits;
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Error(std::string("unknown escape \\") + e);
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated literal");
  }

  /// @lang-tag after a closing quote.
  std::string ReadLanguageTag() {
    ++pos_;  // '@'
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Bare numeric literal token.
  Result<std::pair<std::string, std::string_view>> ReadNumber() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    bool has_dot = false;
    bool has_exp = false;
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !has_dot && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        // A '.' is only part of the number if a digit follows (otherwise
        // it terminates the statement).
        has_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a number");
    std::string_view datatype =
        has_exp ? kXsdDouble : (has_dot ? kXsdDecimal : kXsdInteger);
    return std::make_pair(std::string(text_.substr(start, pos_ - start)),
                          datatype);
  }

  /// Skips to just past the next top-level '.' (error recovery).
  void SkipStatement() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"' &&
               text_[pos_] != '\n') {
          if (text_[pos_] == '\\') ++pos_;
          ++pos_;
        }
        if (pos_ < text_.size()) ++pos_;
        continue;
      }
      if (c == '<') {
        while (pos_ < text_.size() && text_[pos_] != '>' &&
               text_[pos_] != '\n') {
          ++pos_;
        }
      }
      if (c == '\n') ++line_;
      ++pos_;
      if (c == '.') return;
    }
  }

  void DeclarePrefix(std::string prefix, std::string iri) {
    prefixes_[std::move(prefix)] = std::move(iri);
  }
  void SetBase(std::string iri) { base_ = std::move(iri); }

  /// Reads "pre:" of a @prefix directive.
  Result<std::string> ReadPrefixDeclaration() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (pos_ < text_.size() && IsPnChar(text_[pos_])) ++pos_;
    std::string prefix(text_.substr(start, pos_ - start));
    if (!TryChar(':')) return Error("expected ':' in prefix declaration");
    return prefix;
  }

 private:
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp <= 0x7F) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
};

/// Reads one object term into `triple` (object/kind/language/datatype).
Status ReadObjectInto(TurtleCursor* cursor, Triple* triple) {
  triple->language.clear();
  triple->datatype.clear();
  char c = cursor->Peek();
  if (c == '"') {
    KSP_ASSIGN_OR_RETURN(triple->object, cursor->ReadStringBody());
    triple->object_kind = ObjectKind::kLiteral;
    if (cursor->Peek() == '@') {
      triple->language = cursor->ReadLanguageTag();
    } else if (cursor->TryChar('^')) {
      if (!cursor->TryChar('^')) {
        return cursor->Error("expected '^^' before datatype");
      }
      KSP_ASSIGN_OR_RETURN(triple->datatype, cursor->ReadIri());
    }
    return Status::OK();
  }
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
      c == '.') {
    KSP_ASSIGN_OR_RETURN(auto number, cursor->ReadNumber());
    triple->object = number.first;
    triple->datatype = std::string(number.second);
    triple->object_kind = ObjectKind::kLiteral;
    return Status::OK();
  }
  if (cursor->TryWord("true")) {
    triple->object = "true";
    triple->datatype = std::string(kXsdBoolean);
    triple->object_kind = ObjectKind::kLiteral;
    return Status::OK();
  }
  if (cursor->TryWord("false")) {
    triple->object = "false";
    triple->datatype = std::string(kXsdBoolean);
    triple->object_kind = ObjectKind::kLiteral;
    return Status::OK();
  }
  KSP_ASSIGN_OR_RETURN(triple->object, cursor->ReadIri());
  triple->object_kind = ObjectKind::kIri;
  return Status::OK();
}

/// Parses one statement (after directives are handled). Emits triples.
Status ParseStatement(TurtleCursor* cursor,
                      const std::function<void(const Triple&)>& sink,
                      uint64_t* emitted) {
  Triple triple;
  KSP_ASSIGN_OR_RETURN(triple.subject, cursor->ReadIri());
  while (true) {
    // verb := 'a' | iri
    if (cursor->TryWord("a")) {
      triple.predicate = std::string(kRdfType);
    } else {
      KSP_ASSIGN_OR_RETURN(triple.predicate, cursor->ReadIri());
    }
    // objectList
    while (true) {
      KSP_RETURN_NOT_OK(ReadObjectInto(cursor, &triple));
      sink(triple);
      ++*emitted;
      if (!cursor->TryChar(',')) break;
    }
    if (cursor->TryChar(';')) {
      // A dangling ';' before '.' is legal Turtle.
      if (cursor->Peek() == '.') break;
      continue;
    }
    break;
  }
  if (!cursor->TryChar('.')) {
    return cursor->Error("expected '.' at end of statement");
  }
  return Status::OK();
}

}  // namespace

TurtleParser::TurtleParser(Options options) : options_(options) {}

Result<uint64_t> TurtleParser::ParseString(
    std::string_view text, const std::function<void(const Triple&)>& sink,
    uint64_t* malformed_statements) const {
  TurtleCursor cursor(text);
  uint64_t emitted = 0;
  uint64_t malformed = 0;

  while (!cursor.AtEnd()) {
    // Directives.
    if (cursor.TryWord("@prefix") || cursor.TryWord("PREFIX")) {
      auto handle = [&]() -> Status {
        KSP_ASSIGN_OR_RETURN(std::string prefix,
                             cursor.ReadPrefixDeclaration());
        KSP_ASSIGN_OR_RETURN(std::string iri, cursor.ReadIriRef());
        cursor.TryChar('.');  // '@prefix' ends with '.', 'PREFIX' doesn't.
        cursor.DeclarePrefix(std::move(prefix), std::move(iri));
        return Status::OK();
      };
      Status st = handle();
      if (!st.ok()) {
        if (options_.strict) return st;
        ++malformed;
        cursor.SkipStatement();
      }
      continue;
    }
    if (cursor.TryWord("@base") || cursor.TryWord("BASE")) {
      auto iri = cursor.ReadIriRef();
      if (!iri.ok()) {
        if (options_.strict) return iri.status();
        ++malformed;
        cursor.SkipStatement();
        continue;
      }
      cursor.TryChar('.');
      cursor.SetBase(std::move(*iri));
      continue;
    }

    Status st = ParseStatement(&cursor, sink, &emitted);
    if (!st.ok()) {
      if (options_.strict) return st;
      ++malformed;
      cursor.SkipStatement();
    }
  }
  if (malformed_statements != nullptr) *malformed_statements = malformed;
  return emitted;
}

Result<uint64_t> TurtleParser::ParseFile(
    const std::string& path, const std::function<void(const Triple&)>& sink,
    uint64_t* malformed_statements) const {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  return ParseString(text, sink, malformed_statements);
}

}  // namespace ksp
