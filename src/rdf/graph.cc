#include "rdf/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace ksp {

void GraphBuilder::AddEdge(VertexId src, VertexId dst,
                           PredicateId predicate) {
  edges_.push_back(Edge{src, dst, predicate});
}

Graph GraphBuilder::Finish(VertexId num_vertices) {
  // Sort by (src, dst, predicate) and drop duplicates.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.predicate < b.predicate;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst &&
                                    a.predicate == b.predicate;
                           }),
               edges_.end());

  Graph g;
  g.out_offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges_) {
    KSP_CHECK(e.src < num_vertices && e.dst < num_vertices)
        << "edge endpoint out of range";
    ++g.out_offsets_[e.src + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  g.out_targets_.resize(edges_.size());
  g.out_predicates_.resize(edges_.size());
  {
    std::vector<uint64_t> cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      uint64_t slot = cursor[e.src]++;
      g.out_targets_[slot] = e.dst;
      g.out_predicates_[slot] = e.predicate;
    }
  }

  g.in_offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges_) ++g.in_offsets_[e.dst + 1];
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_sources_.resize(edges_.size());
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      g.in_sources_[cursor[e.dst]++] = e.src;
    }
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

uint64_t Graph::MemoryUsageBytes() const {
  return out_offsets_.capacity() * sizeof(uint64_t) +
         out_targets_.capacity() * sizeof(VertexId) +
         out_predicates_.capacity() * sizeof(PredicateId) +
         in_offsets_.capacity() * sizeof(uint64_t) +
         in_sources_.capacity() * sizeof(VertexId);
}

std::vector<uint64_t> Graph::WeaklyConnectedComponentSizes() const {
  const VertexId n = num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;

  // Union-find with path halving.
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  auto unite = [&](VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[a] = b;
  };

  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : OutNeighbors(v)) unite(v, u);
  }

  std::vector<uint64_t> counts(n, 0);
  for (VertexId v = 0; v < n; ++v) ++counts[find(v)];
  std::vector<uint64_t> sizes;
  for (uint64_t c : counts) {
    if (c > 0) sizes.push_back(c);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace ksp
