#include "rdf/kb_stats.h"

#include <cstdio>

namespace ksp {

KnowledgeBaseStats ComputeKnowledgeBaseStats(const KnowledgeBase& kb) {
  KnowledgeBaseStats stats;
  stats.num_vertices = kb.num_vertices();
  stats.num_edges = kb.num_edges();
  stats.num_places = kb.num_places();
  stats.num_terms = kb.num_terms();
  stats.total_postings = kb.inverted_index().NumPostings();
  stats.keyword_frequency = kb.inverted_index().AveragePostingLength();
  stats.avg_document_length = kb.documents().AverageDocumentLength();
  stats.avg_out_degree =
      stats.num_vertices == 0
          ? 0.0
          : static_cast<double>(stats.num_edges) /
                static_cast<double>(stats.num_vertices);
  stats.place_fraction =
      stats.num_vertices == 0
          ? 0.0
          : static_cast<double>(stats.num_places) /
                static_cast<double>(stats.num_vertices);
  stats.wcc_sizes = kb.graph().WeaklyConnectedComponentSizes();
  return stats;
}

std::string KnowledgeBaseStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "vertices=%llu edges=%llu (avg out-degree %.2f)\n"
      "places=%llu (%.1f%% of vertices)\n"
      "terms=%llu postings=%llu keyword-frequency=%.2f "
      "avg-doc-length=%.2f\n"
      "WCCs=%llu largest=%llu (%.1f%% of vertices)",
      static_cast<unsigned long long>(num_vertices),
      static_cast<unsigned long long>(num_edges), avg_out_degree,
      static_cast<unsigned long long>(num_places), place_fraction * 100.0,
      static_cast<unsigned long long>(num_terms),
      static_cast<unsigned long long>(total_postings), keyword_frequency,
      avg_document_length, static_cast<unsigned long long>(NumWccs()),
      static_cast<unsigned long long>(LargestWcc()),
      num_vertices == 0
          ? 0.0
          : 100.0 * static_cast<double>(LargestWcc()) /
                static_cast<double>(num_vertices));
  return buf;
}

}  // namespace ksp
