#ifndef KSP_RDF_KB_IO_H_
#define KSP_RDF_KB_IO_H_

#include <memory>
#include <string>

#include "common/io_util.h"
#include "common/result.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// Binary snapshot of a KnowledgeBase — the "disk-based representation"
/// escape hatch the paper mentions for data that outgrows RAM-friendly
/// rebuild times. Saving then loading reproduces vertex ids, term ids,
/// documents, edges (with predicates), and the place registry exactly,
/// so indexes built on a loaded KB behave identically.
///
/// Format v2 (little-endian, varint-packed body inside the checksummed
/// container of common/io_util.h):
///   container magic u32
///   header section: snapshot magic u32, format version u32
///   body section: vocabulary, predicate dictionary, vertex IRIs,
///                 documents CSR, out-edge CSR with predicate ids,
///                 places (vertex id, lat, lon)
/// Saves go through temp-file + fsync + atomic rename; loads verify every
/// section checksum and still read the CRC-free v1 layout for one
/// release. `fs` defaults to DefaultFileSystem().
Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path,
                         FileSystem* fs = nullptr,
                         ArtifactInfo* info = nullptr);

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseSnapshot(
    const std::string& path, FileSystem* fs = nullptr);

/// v1 writer kept only for legacy-read-window tests.
Status SaveKnowledgeBaseLegacyForTesting(const KnowledgeBase& kb,
                                         const std::string& path);

}  // namespace ksp

#endif  // KSP_RDF_KB_IO_H_
