#ifndef KSP_RDF_KB_IO_H_
#define KSP_RDF_KB_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "rdf/knowledge_base.h"

namespace ksp {

/// Binary snapshot of a KnowledgeBase — the "disk-based representation"
/// escape hatch the paper mentions for data that outgrows RAM-friendly
/// rebuild times. Saving then loading reproduces vertex ids, term ids,
/// documents, edges (with predicates), and the place registry exactly,
/// so indexes built on a loaded KB behave identically.
///
/// Format (little-endian, varint-packed, CRC-free but magic-framed):
///   header:  magic u32, version u32
///   section: vocabulary (term strings)
///   section: predicate dictionary
///   section: vertex IRIs
///   section: documents CSR
///   section: out-edge CSR with predicate ids
///   section: places (vertex id, lat, lon)
///   footer:  magic u32
Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path);

Result<std::unique_ptr<KnowledgeBase>> LoadKnowledgeBaseSnapshot(
    const std::string& path);

}  // namespace ksp

#endif  // KSP_RDF_KB_IO_H_
