#ifndef KSP_SPARQL_PARSER_H_
#define KSP_SPARQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sparql/query.h"

namespace ksp {
namespace sparql {

/// Parses the SPARQL subset this library evaluates:
///
///   SELECT ?a ?b WHERE {
///     ?a <http://example.org/dedication> ?b .
///     ?b <http://example.org/birthPlace> <http://example.org/Roman_Empire> .
///     FILTER(distance(?a, POINT(43.5, 4.7)) < 2.0)
///   } LIMIT 10
///
/// Also accepted: `SELECT *`. Keywords are case-insensitive; the trailing
/// '.' of the last pattern is optional; whitespace is free-form.
/// Unsupported SPARQL (OPTIONAL, UNION, literals in patterns, prefixes)
/// is rejected with an explanatory InvalidArgument.
Result<SelectQuery> ParseSelectQuery(std::string_view text);

}  // namespace sparql
}  // namespace ksp

#endif  // KSP_SPARQL_PARSER_H_
