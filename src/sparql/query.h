#ifndef KSP_SPARQL_QUERY_H_
#define KSP_SPARQL_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "spatial/geometry.h"

namespace ksp {
namespace sparql {

/// One term of a triple pattern: a variable ("?x") or an IRI constant.
struct Term {
  enum class Kind { kVariable, kIri };
  Kind kind = Kind::kIri;
  /// Variable name without '?', or the IRI without angle brackets.
  std::string value;

  static Term Variable(std::string name) {
    return Term{Kind::kVariable, std::move(name)};
  }
  static Term Iri(std::string iri) {
    return Term{Kind::kIri, std::move(iri)};
  }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.value == b.value;
  }
};

/// ⟨subject, predicate, object⟩ with variables allowed in the subject and
/// object positions and in the predicate position.
struct TriplePattern {
  Term subject;
  Term predicate;
  Term object;
};

/// FILTER(distance(?var, POINT(lat, lon)) < radius): the GeoSPARQL-style
/// spatial restriction [14] — the variable must bind to a place vertex
/// within `radius` of `center`.
struct DistanceFilter {
  std::string variable;
  Point center;
  double radius = 0.0;
};

/// A SELECT query over basic graph patterns, the structured-language
/// counterpart the paper's introduction argues against for end users.
struct SelectQuery {
  /// Projected variables, in order. Empty means SELECT * (all variables
  /// in pattern order of first occurrence).
  std::vector<std::string> select;
  std::vector<TriplePattern> patterns;
  std::vector<DistanceFilter> filters;
  /// 0 = unlimited.
  uint64_t limit = 0;
};

}  // namespace sparql
}  // namespace ksp

#endif  // KSP_SPARQL_QUERY_H_
