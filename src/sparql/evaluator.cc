#include "sparql/evaluator.h"

#include <algorithm>
#include <functional>

#include "common/strings.h"
#include "sparql/parser.h"

namespace ksp {
namespace sparql {

namespace {

/// Current variable assignment during the backtracking join.
using Bindings = std::unordered_map<std::string, VertexId>;

/// Resolves a term under the current bindings; kInvalidVertex if it is an
/// unbound variable, nullopt if it is an IRI absent from the KB (the
/// pattern can never match).
std::optional<VertexId> ResolveTerm(const KnowledgeBase& kb,
                                    const Bindings& bindings,
                                    const Term& term) {
  if (term.is_variable()) {
    auto it = bindings.find(term.value);
    return it == bindings.end() ? kInvalidVertex : it->second;
  }
  auto vertex = kb.FindVertex(term.value);
  if (!vertex.has_value()) return std::nullopt;
  return *vertex;
}

/// Number of positions a pattern has bound under `bindings` (predicate
/// constants count: they restrict candidates sharply).
int BoundScore(const KnowledgeBase& kb, const Bindings& bindings,
               const TriplePattern& pattern) {
  int score = 0;
  auto bound = [&](const Term& term) {
    if (!term.is_variable()) return true;
    return bindings.find(term.value) != bindings.end();
  };
  if (bound(pattern.subject)) score += 4;  // Subject access is cheapest.
  if (bound(pattern.object)) score += 3;
  if (bound(pattern.predicate)) score += 2;
  (void)kb;
  return score;
}

}  // namespace

SparqlEvaluator::SparqlEvaluator(const KnowledgeBase* kb) : kb_(kb) {
  // Predicate index: one pass over the out-adjacency.
  const Graph& graph = kb_->graph();
  const Vocabulary& predicates = kb_->predicate_dictionary();
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    auto targets = graph.OutNeighbors(s);
    auto preds = graph.OutPredicates(s);
    for (size_t i = 0; i < targets.size(); ++i) {
      predicate_edges_[predicates.Term(preds[i])].push_back(
          Edge{s, targets[i]});
    }
  }
  for (auto& [iri, edges] : predicate_edges_) {
    (void)iri;
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.subject != b.subject) return a.subject < b.subject;
      return a.object < b.object;
    });
  }
}

const std::vector<SparqlEvaluator::Edge>* SparqlEvaluator::EdgesOfPredicate(
    std::string_view iri) const {
  auto it = predicate_edges_.find(std::string(iri));
  return it == predicate_edges_.end() ? nullptr : &it->second;
}

Result<SparqlResult> SparqlEvaluator::Execute(
    const SelectQuery& query) const {
  // Collect variables in first-occurrence order (for SELECT *) and check
  // that projected/filtered variables exist.
  std::vector<std::string> all_variables;
  auto note_variable = [&](const Term& term) {
    if (term.is_variable() &&
        std::find(all_variables.begin(), all_variables.end(), term.value) ==
            all_variables.end()) {
      all_variables.push_back(term.value);
    }
  };
  for (const TriplePattern& pattern : query.patterns) {
    note_variable(pattern.subject);
    note_variable(pattern.predicate);
    note_variable(pattern.object);
  }
  SparqlResult result;
  result.variables =
      query.select.empty() ? all_variables : query.select;
  for (const std::string& name : result.variables) {
    if (std::find(all_variables.begin(), all_variables.end(), name) ==
        all_variables.end()) {
      return Status::InvalidArgument("SELECT variable ?" + name +
                                     " does not occur in WHERE");
    }
  }
  for (const DistanceFilter& filter : query.filters) {
    if (std::find(all_variables.begin(), all_variables.end(),
                  filter.variable) == all_variables.end()) {
      return Status::InvalidArgument("FILTER variable ?" + filter.variable +
                                     " does not occur in WHERE");
    }
  }

  const Graph& graph = kb_->graph();
  const Vocabulary& predicates = kb_->predicate_dictionary();
  Bindings bindings;
  std::vector<bool> used(query.patterns.size(), false);

  // Spatial filters fire the moment their variable binds.
  auto passes_filters = [&](const std::string& variable,
                            VertexId vertex) {
    for (const DistanceFilter& filter : query.filters) {
      if (filter.variable != variable) continue;
      PlaceId place = kb_->place_of(vertex);
      if (place == kInvalidPlace) return false;
      if (Distance(kb_->place_location(place), filter.center) >
          filter.radius) {
        return false;
      }
    }
    return true;
  };

  /// Binds term := vertex (if a variable); false if inconsistent.
  /// `undo` collects variables bound at this step.
  auto bind = [&](const Term& term, VertexId vertex,
                  std::vector<std::string>* undo) {
    if (!term.is_variable()) return true;
    auto it = bindings.find(term.value);
    if (it != bindings.end()) return it->second == vertex;
    if (!passes_filters(term.value, vertex)) return false;
    bindings.emplace(term.value, vertex);
    undo->push_back(term.value);
    return true;
  };

  bool limit_hit = false;
  std::function<void()> recurse = [&]() {
    if (limit_hit) return;
    // Pick the most-bound unused pattern.
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < query.patterns.size(); ++i) {
      if (used[i]) continue;
      int score = BoundScore(*kb_, bindings, query.patterns[i]);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      // All patterns satisfied: emit a row.
      ResultRow row;
      row.values.reserve(result.variables.size());
      for (const std::string& name : result.variables) {
        row.values.push_back(bindings.at(name));
      }
      result.rows.push_back(std::move(row));
      if (query.limit != 0 && result.rows.size() >= query.limit) {
        limit_hit = true;
      }
      return;
    }

    const TriplePattern& pattern = query.patterns[best];
    used[best] = true;

    auto subject = ResolveTerm(*kb_, bindings, pattern.subject);
    auto object = ResolveTerm(*kb_, bindings, pattern.object);
    // A constant IRI absent from the KB: no matches.
    if (subject.has_value() && object.has_value()) {
      const bool predicate_known =
          pattern.predicate.is_variable() ||
          kb_->predicate_dictionary().Lookup(pattern.predicate.value)
              .has_value();

      // Variable predicates were rejected up front, so the pattern's
      // predicate is a constant IRI here.
      auto try_edge = [&](VertexId s, VertexId o) {
        std::vector<std::string> undo;
        bool ok = bind(pattern.subject, s, &undo) &&
                  bind(pattern.object, o, &undo);
        if (ok) recurse();
        for (const std::string& name : undo) bindings.erase(name);
      };

      if (predicate_known) {
        if (*subject != kInvalidVertex) {
          // Bound subject: scan its out-edges.
          auto targets = graph.OutNeighbors(*subject);
          auto preds = graph.OutPredicates(*subject);
          for (size_t i = 0; i < targets.size() && !limit_hit; ++i) {
            if (predicates.Term(preds[i]) != pattern.predicate.value) {
              continue;
            }
            if (*object != kInvalidVertex && targets[i] != *object) continue;
            try_edge(*subject, targets[i]);
          }
        } else if (*object != kInvalidVertex) {
          // Bound object: candidates from the in-adjacency, verified
          // against the out-edge predicates.
          for (VertexId s : graph.InNeighbors(*object)) {
            if (limit_hit) break;
            auto targets = graph.OutNeighbors(s);
            auto preds = graph.OutPredicates(s);
            for (size_t i = 0; i < targets.size() && !limit_hit; ++i) {
              if (targets[i] != *object) continue;
              if (predicates.Term(preds[i]) != pattern.predicate.value) {
                continue;
              }
              try_edge(s, *object);
            }
          }
        } else {
          // Neither endpoint bound: use the predicate index.
          if (const auto* edges = EdgesOfPredicate(pattern.predicate.value)) {
            for (const Edge& e : *edges) {
              if (limit_hit) break;
              try_edge(e.subject, e.object);
            }
          }
        }
      }
    }
    used[best] = false;
  };

  // Predicate variables are parsed but not evaluable (predicates are not
  // vertices in the simplified graph).
  for (const TriplePattern& pattern : query.patterns) {
    if (pattern.predicate.is_variable()) {
      return Status::Unimplemented(
          "variable predicates are not supported over the simplified "
          "entity graph");
    }
  }

  recurse();
  return result;
}

Result<SparqlResult> SparqlEvaluator::ExecuteText(
    std::string_view text) const {
  KSP_ASSIGN_OR_RETURN(SelectQuery query, ParseSelectQuery(text));
  return Execute(query);
}

std::string SparqlEvaluator::ToTable(const SparqlResult& result) const {
  std::string out;
  for (const std::string& name : result.variables) {
    out += "?" + name + "\t";
  }
  out += "\n";
  for (const ResultRow& row : result.rows) {
    for (VertexId v : row.values) {
      out += kb_->VertexIri(v) + "\t";
    }
    out += "\n";
  }
  return out;
}

}  // namespace sparql
}  // namespace ksp
