#ifndef KSP_SPARQL_EVALUATOR_H_
#define KSP_SPARQL_EVALUATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/knowledge_base.h"
#include "sparql/query.h"

namespace ksp {
namespace sparql {

/// One result row: vertex ids aligned with SparqlResult::variables.
struct ResultRow {
  std::vector<VertexId> values;
};

struct SparqlResult {
  std::vector<std::string> variables;
  std::vector<ResultRow> rows;
};

/// Basic-graph-pattern evaluator over the KnowledgeBase's entity graph:
/// the structured-query path (GeoSPARQL-style, [14]) that kSP queries
/// replace for non-expert users. Variables range over entity vertices
/// (literals and rdf:type objects are folded into documents during KB
/// construction, per the paper's §2 simplification — patterns against
/// them are rejected at parse time).
///
/// Evaluation: backtracking join. At each step the pattern with the most
/// bound positions is chosen; candidates come from the out-adjacency
/// (bound subject), the in-adjacency (bound object), or a predicate index
/// built once at construction (only the predicate bound). Distance
/// filters are applied as soon as their variable binds.
class SparqlEvaluator {
 public:
  explicit SparqlEvaluator(const KnowledgeBase* kb);

  SparqlEvaluator(const SparqlEvaluator&) = delete;
  SparqlEvaluator& operator=(const SparqlEvaluator&) = delete;

  /// Evaluates a parsed query.
  Result<SparqlResult> Execute(const SelectQuery& query) const;

  /// Parses (see sparql/parser.h) and evaluates.
  Result<SparqlResult> ExecuteText(std::string_view text) const;

  /// Renders a result as an aligned text table of IRIs (for the CLI and
  /// examples).
  std::string ToTable(const SparqlResult& result) const;

 private:
  struct Edge {
    VertexId subject;
    VertexId object;
  };

  /// Edges of one predicate, sorted by (subject, object).
  const std::vector<Edge>* EdgesOfPredicate(std::string_view iri) const;

  const KnowledgeBase* kb_;
  std::unordered_map<std::string, std::vector<Edge>> predicate_edges_;
};

}  // namespace sparql
}  // namespace ksp

#endif  // KSP_SPARQL_EVALUATOR_H_
