#include "sparql/parser.h"

#include <cctype>
#include <cstdlib>

namespace ksp {
namespace sparql {

namespace {

/// Character-level tokenizer for the SPARQL subset.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWhitespace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Consumes `keyword` case-insensitively; false (no movement) otherwise.
  bool TryKeyword(std::string_view keyword) {
    SkipWhitespace();
    if (pos_ + keyword.size() > text_.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    // Word boundary for alphabetic keywords.
    if (std::isalpha(static_cast<unsigned char>(keyword.back())) &&
        pos_ + keyword.size() < text_.size() &&
        std::isalnum(static_cast<unsigned char>(
            text_[pos_ + keyword.size()]))) {
      return false;
    }
    pos_ += keyword.size();
    return true;
  }

  bool TryChar(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// ?name
  Result<std::string> ReadVariable() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '?') {
      return Status::InvalidArgument(Where("expected '?variable'"));
    }
    ++pos_;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(Where("empty variable name"));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// <iri>
  Result<std::string> ReadIri() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::InvalidArgument(Where("expected '<iri>'"));
    }
    ++pos_;
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(Where("unterminated IRI"));
    }
    std::string iri(text_.substr(start, pos_ - start));
    ++pos_;
    return iri;
  }

  Result<double> ReadNumber() {
    SkipWhitespace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(Where("expected a number"));
    }
    return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  std::string Where(std::string_view message) const {
    return std::string(message) + " at offset " + std::to_string(pos_);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<Term> ReadTerm(Lexer* lexer) {
  if (lexer->Peek() == '?') {
    KSP_ASSIGN_OR_RETURN(std::string name, lexer->ReadVariable());
    return Term::Variable(std::move(name));
  }
  if (lexer->Peek() == '<') {
    KSP_ASSIGN_OR_RETURN(std::string iri, lexer->ReadIri());
    return Term::Iri(std::move(iri));
  }
  if (lexer->Peek() == '"') {
    return Status::InvalidArgument(
        "literals are not supported in patterns: the KB folds literals "
        "into vertex documents (use kSP keyword search instead)");
  }
  return Status::InvalidArgument(
      lexer->Where("expected a variable or an IRI"));
}

Result<DistanceFilter> ReadFilter(Lexer* lexer) {
  // FILTER(distance(?v, POINT(lat, lon)) < r)
  DistanceFilter filter;
  if (!lexer->TryChar('(')) {
    return Status::InvalidArgument(lexer->Where("expected '(' after FILTER"));
  }
  if (!lexer->TryKeyword("distance")) {
    return Status::InvalidArgument(
        lexer->Where("only distance(...) filters are supported"));
  }
  if (!lexer->TryChar('(')) {
    return Status::InvalidArgument(
        lexer->Where("expected '(' after distance"));
  }
  KSP_ASSIGN_OR_RETURN(filter.variable, lexer->ReadVariable());
  if (!lexer->TryChar(',')) {
    return Status::InvalidArgument(lexer->Where("expected ','"));
  }
  if (!lexer->TryKeyword("POINT")) {
    return Status::InvalidArgument(lexer->Where("expected POINT(lat, lon)"));
  }
  if (!lexer->TryChar('(')) {
    return Status::InvalidArgument(lexer->Where("expected '('"));
  }
  KSP_ASSIGN_OR_RETURN(filter.center.x, lexer->ReadNumber());
  if (!lexer->TryChar(',')) {
    return Status::InvalidArgument(lexer->Where("expected ','"));
  }
  KSP_ASSIGN_OR_RETURN(filter.center.y, lexer->ReadNumber());
  if (!lexer->TryChar(')')) {
    return Status::InvalidArgument(lexer->Where("expected ')'"));
  }
  if (!lexer->TryChar(')')) {
    return Status::InvalidArgument(lexer->Where("expected ')'"));
  }
  if (!lexer->TryChar('<')) {
    return Status::InvalidArgument(
        lexer->Where("expected '<' (distance upper bound)"));
  }
  KSP_ASSIGN_OR_RETURN(filter.radius, lexer->ReadNumber());
  if (!lexer->TryChar(')')) {
    return Status::InvalidArgument(lexer->Where("expected ')'"));
  }
  return filter;
}

}  // namespace

Result<SelectQuery> ParseSelectQuery(std::string_view text) {
  Lexer lexer(text);
  SelectQuery query;

  if (!lexer.TryKeyword("SELECT")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  if (lexer.TryChar('*')) {
    // SELECT *: projection filled by the evaluator.
  } else {
    while (lexer.Peek() == '?') {
      KSP_ASSIGN_OR_RETURN(std::string name, lexer.ReadVariable());
      query.select.push_back(std::move(name));
    }
    if (query.select.empty()) {
      return Status::InvalidArgument("SELECT needs '*' or variables");
    }
  }

  if (!lexer.TryKeyword("WHERE")) {
    return Status::InvalidArgument(lexer.Where("expected WHERE"));
  }
  if (!lexer.TryChar('{')) {
    return Status::InvalidArgument(lexer.Where("expected '{'"));
  }

  while (!lexer.TryChar('}')) {
    if (lexer.AtEnd()) {
      return Status::InvalidArgument("unterminated WHERE block");
    }
    if (lexer.TryKeyword("FILTER")) {
      KSP_ASSIGN_OR_RETURN(DistanceFilter filter, ReadFilter(&lexer));
      query.filters.push_back(std::move(filter));
      lexer.TryChar('.');  // Optional separator.
      continue;
    }
    if (lexer.TryKeyword("OPTIONAL") || lexer.TryKeyword("UNION")) {
      return Status::InvalidArgument(
          "OPTIONAL/UNION are not supported by this subset");
    }
    TriplePattern pattern;
    KSP_ASSIGN_OR_RETURN(pattern.subject, ReadTerm(&lexer));
    KSP_ASSIGN_OR_RETURN(pattern.predicate, ReadTerm(&lexer));
    KSP_ASSIGN_OR_RETURN(pattern.object, ReadTerm(&lexer));
    query.patterns.push_back(std::move(pattern));
    lexer.TryChar('.');  // Optional after the last pattern.
  }

  if (lexer.TryKeyword("LIMIT")) {
    KSP_ASSIGN_OR_RETURN(double limit, lexer.ReadNumber());
    if (limit < 0) return Status::InvalidArgument("negative LIMIT");
    query.limit = static_cast<uint64_t>(limit);
  }
  if (!lexer.AtEnd()) {
    return Status::InvalidArgument(lexer.Where("trailing input"));
  }
  if (query.patterns.empty()) {
    return Status::InvalidArgument("WHERE block has no triple patterns");
  }
  return query;
}

}  // namespace sparql
}  // namespace ksp
