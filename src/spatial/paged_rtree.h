#ifndef KSP_SPATIAL_PAGED_RTREE_H_
#define KSP_SPATIAL_PAGED_RTREE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/file.h"
#include "common/result.h"
#include "common/status.h"
#include "spatial/rtree.h"
#include "storage/shared_buffer_pool.h"

namespace ksp {

/// Disk-resident R-tree with a node-as-page layout: node `i` occupies a
/// fixed `node_stride` byte slot starting at `pages_offset + i * stride`
/// (stride is page_size, or the smallest multiple that fits a full
/// node), so fetching one node touches exactly stride/page_size buffer
/// pool pages and never straddles a page boundary. Node ids are those of
/// the RTree it was written from — the α-radius index and every
/// traversal-order-dependent counter stay valid across backends.
///
/// Serialized inside the PR 2 checksummed container (v2):
///   header section: artifact magic "KPRT", format version
///   meta section:   max_entries u32, min_entries u32, root u32,
///                   size u64, num_nodes u64, page_size u32,
///                   node_stride u32
///   pad section:    zero bytes aligning the pages payload to page_size
///   pages section:  num_nodes × node_stride slots; each slot holds
///                   [is_leaf u8][pad u8×3][num_entries u32][parent u32]
///                   [reserved u32] then num_entries × Entry
///                   (Rect 4×f64 + id u64 = 40 bytes)
/// Open() CRC-verifies every section (the pages section is streamed)
/// before any query runs; query-time node reads go through the shared
/// buffer pool without re-checksumming, like the disk inverted index.
class PagedRTree : public SpatialAccessor {
 public:
  /// Bytes of the fixed per-node slot header.
  static constexpr uint32_t kNodeHeaderBytes = 16;

  /// Serializes `tree` (atomic temp-file + rename, checksummed).
  static Status Write(const RTree& tree, const std::string& path,
                      uint32_t page_size = 4096, FileSystem* fs = nullptr,
                      ArtifactInfo* info = nullptr);

  /// Opens a paged tree and registers its file with `pool`; `pool` must
  /// outlive the returned tree. The file's page size must match the
  /// pool's.
  static Result<std::unique_ptr<PagedRTree>> Open(const std::string& path,
                                                  SharedBufferPool* pool,
                                                  FileSystem* fs = nullptr);

  ~PagedRTree() override;

  PagedRTree(const PagedRTree&) = delete;
  PagedRTree& operator=(const PagedRTree&) = delete;

  bool empty() const override { return size_ == 0; }
  uint32_t root() const override { return root_; }
  size_t num_nodes() const override { return num_nodes_; }
  Status ReadNode(uint32_t id, SpatialCursor* cursor,
                  SpatialNodeRef* out) const override;

  size_t size() const { return size_; }
  uint32_t page_size() const { return page_size_; }
  uint32_t node_stride() const { return node_stride_; }
  uint64_t file_size_bytes() const { return file_ ? file_->Size() : 0; }
  uint32_t file_id() const { return file_id_; }

 private:
  PagedRTree() = default;

  std::unique_ptr<RandomAccessFile> file_;
  SharedBufferPool* pool_ = nullptr;
  uint32_t file_id_ = 0;
  uint32_t max_entries_ = 0;
  uint32_t min_entries_ = 0;
  uint32_t root_ = RTree::kNoNode;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 0;
  uint32_t page_size_ = 0;
  uint32_t node_stride_ = 0;
  /// Absolute file offset of the pages-section payload (page-aligned).
  uint64_t pages_offset_ = 0;
  /// Byte length of the pages-section payload (num_nodes × stride).
  uint64_t pages_size_check_ = 0;
};

}  // namespace ksp

#endif  // KSP_SPATIAL_PAGED_RTREE_H_
