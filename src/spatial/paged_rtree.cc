#include "spatial/paged_rtree.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "common/io_util.h"

namespace ksp {

namespace {
constexpr uint32_t kPagedRTreeMagic = 0x5452504Bu;  // "KPRT"
constexpr uint32_t kPagedRTreeFormatVersion = 1;

static_assert(std::is_trivially_copyable_v<RTree::Entry>,
              "entries are memcpy'd into page slots");
constexpr uint64_t kEntryBytes = sizeof(RTree::Entry);

uint32_t NodeStrideFor(uint32_t max_entries, uint32_t page_size) {
  const uint64_t node_bytes =
      PagedRTree::kNodeHeaderBytes + max_entries * kEntryBytes;
  const uint64_t pages = (node_bytes + page_size - 1) / page_size;
  return static_cast<uint32_t>(pages * page_size);
}
}  // namespace

Status PagedRTree::Write(const RTree& tree, const std::string& path,
                         uint32_t page_size, FileSystem* fs,
                         ArtifactInfo* info) {
  if (fs == nullptr) fs = DefaultFileSystem();
  if (page_size < kNodeHeaderBytes) {
    return Status::InvalidArgument("page size too small for a node header");
  }
  return WriteArtifactAtomically(
      fs, path, kPagedRTreeMagic, kPagedRTreeFormatVersion,
      [&tree, page_size](ChecksummedWriter* w) -> Status {
        // The options are not reachable through the RTree API; recover
        // the fan-out from the widest node (it bounds every slot).
        uint32_t max_entries = 4;
        for (size_t i = 0; i < tree.num_nodes(); ++i) {
          max_entries = std::max(
              max_entries,
              static_cast<uint32_t>(
                  tree.node(static_cast<uint32_t>(i)).entries.size()));
        }
        const uint32_t stride = NodeStrideFor(max_entries, page_size);

        std::string meta;
        AppendPod(&meta, max_entries);
        AppendPod<uint32_t>(&meta, /*min_entries=*/1);
        AppendPod(&meta, tree.root());
        AppendPod<uint64_t>(&meta, tree.size());
        AppendPod<uint64_t>(&meta, tree.num_nodes());
        AppendPod(&meta, page_size);
        AppendPod(&meta, stride);
        KSP_RETURN_NOT_OK(w->WriteSection(meta));

        // Pad so the pages-section *payload* starts on a page boundary:
        // after this section's [len u64] + pad + [crc u32] comes the
        // pages section's own [len u64].
        const uint64_t prefix = w->bytes_written() + 8 + 4 + 8;
        const uint64_t pad_len =
            (page_size - (prefix % page_size)) % page_size;
        KSP_RETURN_NOT_OK(w->WriteSection(std::string(pad_len, '\0')));

        std::string pages(tree.num_nodes() * static_cast<uint64_t>(stride),
                          '\0');
        for (size_t i = 0; i < tree.num_nodes(); ++i) {
          const RTree::Node& node = tree.node(static_cast<uint32_t>(i));
          char* slot = pages.data() + i * static_cast<uint64_t>(stride);
          slot[0] = node.is_leaf ? 1 : 0;
          const uint32_t num_entries =
              static_cast<uint32_t>(node.entries.size());
          std::memcpy(slot + 4, &num_entries, sizeof(num_entries));
          std::memcpy(slot + 8, &node.parent, sizeof(node.parent));
          if (!node.entries.empty()) {
            std::memcpy(slot + kNodeHeaderBytes, node.entries.data(),
                        node.entries.size() * kEntryBytes);
          }
        }
        return w->WriteSection(pages);
      },
      info);
}

Result<std::unique_ptr<PagedRTree>> PagedRTree::Open(
    const std::string& path, SharedBufferPool* pool, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  KSP_ASSIGN_OR_RETURN(auto file, fs->NewRandomAccessFile(path));
  auto tree = std::unique_ptr<PagedRTree>(new PagedRTree());
  tree->file_ = std::move(file);

  ChecksummedReader reader(tree->file_.get());
  uint32_t version = 0;
  KSP_RETURN_NOT_OK(reader.Open(kPagedRTreeMagic, &version));
  if (version != kPagedRTreeFormatVersion) {
    return CorruptionAt(path, 4, "unsupported paged rtree version " +
                                     std::to_string(version));
  }

  std::string meta;
  const uint64_t meta_offset = reader.offset();
  KSP_RETURN_NOT_OK(reader.ReadSection(&meta));
  size_t pos = 0;
  auto parse_meta = [&]() -> Status {
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->max_entries_));
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->min_entries_));
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->root_));
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->size_));
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->num_nodes_));
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->page_size_));
    KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree->node_stride_));
    if (pos != meta.size()) {
      return Status::Corruption("meta section size mismatch");
    }
    return Status::OK();
  };
  if (Status st = parse_meta(); !st.ok()) {
    return CorruptionAt(path, meta_offset, st.message());
  }

  uint64_t pad_offset = 0;
  uint64_t pad_size = 0;
  KSP_RETURN_NOT_OK(reader.VerifySection(&pad_offset, &pad_size));
  const uint64_t pages_offset_field = reader.offset();
  KSP_RETURN_NOT_OK(
      reader.VerifySection(&tree->pages_offset_, &tree->pages_size_check_));
  KSP_RETURN_NOT_OK(reader.ExpectEnd());

  if (tree->page_size_ == 0 || tree->node_stride_ == 0 ||
      tree->node_stride_ % tree->page_size_ != 0 ||
      tree->node_stride_ <
          kNodeHeaderBytes + tree->max_entries_ * kEntryBytes ||
      tree->max_entries_ < 4) {
    return CorruptionAt(path, meta_offset, "paged rtree geometry invalid");
  }
  if (tree->pages_size_check_ !=
      tree->num_nodes_ * static_cast<uint64_t>(tree->node_stride_)) {
    return CorruptionAt(path, pages_offset_field,
                        "pages section size does not match node count");
  }
  if (tree->num_nodes_ > 0 &&
      tree->pages_offset_ % tree->page_size_ != 0) {
    return CorruptionAt(path, pages_offset_field,
                        "pages section payload is not page-aligned");
  }
  if (tree->root_ != RTree::kNoNode && tree->root_ >= tree->num_nodes_) {
    return CorruptionAt(path, meta_offset, "paged rtree root out of range");
  }
  if (tree->size_ > 0 && tree->root_ == RTree::kNoNode) {
    return CorruptionAt(path, meta_offset, "non-empty tree without a root");
  }
  if (pool->page_size() != tree->page_size_) {
    return Status::InvalidArgument(
        "paged rtree page size does not match the buffer pool");
  }
  tree->pool_ = pool;
  tree->file_id_ = pool->RegisterFile(tree->file_.get());
  return tree;
}

PagedRTree::~PagedRTree() {
  if (pool_ != nullptr) pool_->DropFile(file_id_);
}

Status PagedRTree::ReadNode(uint32_t id, SpatialCursor* cursor,
                            SpatialNodeRef* out) const {
  if (id >= num_nodes_) {
    return Status::InvalidArgument("paged rtree node id out of range");
  }
  const uint64_t slot_offset =
      pages_offset_ + static_cast<uint64_t>(id) * node_stride_;
  KSP_RETURN_NOT_OK(pool_->ReadRange(file_id_, slot_offset, node_stride_,
                                     &cursor->buf, &cursor->io));
  const char* slot = cursor->buf.data();
  uint32_t num_entries = 0;
  std::memcpy(&num_entries, slot + 4, sizeof(num_entries));
  if (num_entries > max_entries_) {
    return Status::Corruption("node entry count exceeds fan-out");
  }
  cursor->entries.resize(num_entries);
  if (num_entries > 0) {
    std::memcpy(cursor->entries.data(), slot + kNodeHeaderBytes,
                num_entries * kEntryBytes);
  }
  out->is_leaf = slot[0] != 0;
  out->entries = {cursor->entries.data(), num_entries};
  return Status::OK();
}

}  // namespace ksp
