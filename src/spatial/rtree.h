#ifndef KSP_SPATIAL_RTREE_H_
#define KSP_SPATIAL_RTREE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "spatial/geometry.h"

namespace ksp {

class FileSystem;
struct ArtifactInfo;

/// Node-splitting strategy for one-by-one insertion (Guttman §3.5).
enum class RTreeSplitStrategy {
  /// Quadratic cost: PickSeeds maximizes wasted area (better trees).
  kQuadratic,
  /// Linear cost: seeds with the greatest normalized separation
  /// (faster builds, slightly worse trees).
  kLinear,
};

struct RTreeOptions {
  /// Maximum entries per node (fan-out). 64 entries ≈ a 4 KB page of
  /// (rect, child) pairs, matching a disk-page-sized node.
  uint32_t max_entries = 64;
  /// Minimum fill after a split. Guttman recommends ~40%.
  uint32_t min_entries = 26;
  RTreeSplitStrategy split = RTreeSplitStrategy::kQuadratic;
};

/// Guttman R-tree [29] over 2-D points, with quadratic- or linear-cost
/// node splitting for one-by-one insertion (the construction the paper
/// uses) and an STR packing bulk loader [45] as the fast alternative
/// Table 5 mentions.
///
/// Node ids are stable once construction is finished; the α-radius
/// machinery of §5 attaches a word neighborhood to every node id. Data
/// payloads are opaque 64-bit values (the kSP engine stores PlaceIds).
class RTree {
 public:
  using Options = RTreeOptions;

  /// One child of an internal node or one data point of a leaf.
  struct Entry {
    Rect rect;
    /// Child node id for internal nodes; opaque payload for leaves.
    uint64_t id = 0;
  };

  struct Node {
    bool is_leaf = true;
    uint32_t parent = kNoNode;
    std::vector<Entry> entries;

    /// MBR of all entries; empty for an empty node.
    Rect BoundingRect() const {
      Rect r = Rect::Empty();
      for (const auto& e : entries) r.ExpandToInclude(e.rect);
      return r;
    }
  };

  static constexpr uint32_t kNoNode = 0xFFFFFFFFu;

  RTree() : RTree(Options()) {}
  explicit RTree(Options options);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Inserts one point (Guttman ChooseLeaf + quadratic split).
  void Insert(const Point& p, uint64_t data);

  /// Builds a packed tree with Sort-Tile-Recursive loading.
  static RTree BulkLoadStr(std::vector<std::pair<Point, uint64_t>> points,
                           Options options = Options());

  size_t size() const { return size_; }
  uint32_t root() const { return root_; }
  bool empty() const { return size_ == 0; }
  const Node& node(uint32_t id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Tree height (1 for a single leaf root; 0 for an empty tree).
  uint32_t Height() const;

  uint64_t MemoryUsageBytes() const;

  /// Collects all (point-rect, data) leaf entries under node `id` —
  /// used by tests and by the α-WN bottom-up construction.
  void CollectLeafEntries(uint32_t id, std::vector<Entry>* out) const;

  /// Range query: appends the payloads of all points inside `range`
  /// (boundary inclusive). Returns the number of nodes visited.
  uint64_t RangeQuery(const Rect& range, std::vector<uint64_t>* out) const;

  /// k nearest neighbours of `query` in ascending distance order.
  std::vector<std::pair<double, uint64_t>> KnnQuery(const Point& query,
                                                    size_t k) const;

  /// Persists / restores the exact tree structure (node ids included, so
  /// an α-radius index built against this tree stays valid). Save writes
  /// the checksummed v2 container via temp-file + fsync + atomic rename;
  /// Load verifies every section CRC (and still reads v1 legacy files for
  /// one release). `fs` defaults to DefaultFileSystem().
  Status Save(const std::string& path, FileSystem* fs = nullptr,
              ArtifactInfo* info = nullptr) const;
  static Result<RTree> Load(const std::string& path,
                            FileSystem* fs = nullptr);

  /// Writes the CRC-free v1 format — kept only so tests can exercise the
  /// legacy-read window; removed once that window closes.
  Status SaveLegacyForTesting(const std::string& path) const;

 private:
  static Result<RTree> LoadLegacy(const std::string& path);
  uint32_t NewNode(bool is_leaf);
  uint32_t ChooseLeaf(const Rect& rect) const;
  /// PickSeeds for the configured strategy: indexes of the two entries
  /// that seed the split groups.
  std::pair<size_t, size_t> PickSeeds(
      const std::vector<Entry>& entries) const;
  /// Splits `node_id` (which has overflowed) in place; returns the id of
  /// the new sibling node.
  uint32_t SplitNode(uint32_t node_id);
  void AdjustTree(uint32_t node_id, uint32_t split_id);
  Rect NodeRect(uint32_t id) const { return nodes_[id].BoundingRect(); }

  Options options_;
  std::vector<Node> nodes_;
  uint32_t root_ = kNoNode;
  size_t size_ = 0;
};

/// View of one R-tree node obtained through a SpatialAccessor. The
/// entries span stays valid until the next ReadNode() on the same
/// cursor (memory accessor: for the tree's lifetime).
struct SpatialNodeRef {
  bool is_leaf = true;
  std::span<const RTree::Entry> entries;
};

/// Per-traversal scratch for SpatialAccessor reads: the disk accessor
/// decodes node pages into it (and accumulates page-I/O counters); the
/// memory accessor leaves it untouched. One cursor per thread.
class SpatialCursor {
 public:
  std::vector<RTree::Entry> entries;
  std::string buf;
  PageIoCounters io;
};

/// Narrow read seam the query algorithms traverse the R-tree through:
/// an id-addressed node store with the same node ids as the in-memory
/// RTree, so MINDIST traversal order — and therefore every prune
/// decision and counter upstream — is backend-invariant by
/// construction. Implementations: MemorySpatialAccessor (below) and the
/// node-as-page PagedRTree (spatial/paged_rtree.h).
class SpatialAccessor {
 public:
  virtual ~SpatialAccessor() = default;

  virtual bool empty() const = 0;
  virtual uint32_t root() const = 0;
  virtual size_t num_nodes() const = 0;
  /// Loads node `id` into `*out` (via `cursor` for disk backends).
  virtual Status ReadNode(uint32_t id, SpatialCursor* cursor,
                          SpatialNodeRef* out) const = 0;

  /// MBR of node `id` (its entries' bounding rect), used to seed
  /// best-first traversals.
  Status NodeRect(uint32_t id, SpatialCursor* cursor, Rect* out) const {
    SpatialNodeRef node;
    KSP_RETURN_NOT_OK(ReadNode(id, cursor, &node));
    *out = Rect::Empty();
    for (const RTree::Entry& e : node.entries) out->ExpandToInclude(e.rect);
    return Status::OK();
  }
};

/// Zero-copy accessor over an in-memory RTree.
class MemorySpatialAccessor : public SpatialAccessor {
 public:
  explicit MemorySpatialAccessor(const RTree* tree) : tree_(tree) {}

  bool empty() const override { return tree_->empty(); }
  uint32_t root() const override { return tree_->root(); }
  size_t num_nodes() const override { return tree_->num_nodes(); }
  Status ReadNode(uint32_t id, SpatialCursor* cursor,
                  SpatialNodeRef* out) const override {
    (void)cursor;
    if (id >= tree_->num_nodes()) {
      return Status::InvalidArgument("rtree node id out of range");
    }
    const RTree::Node& node = tree_->node(id);
    out->is_leaf = node.is_leaf;
    out->entries = node.entries;
    return Status::OK();
  }

 private:
  const RTree* tree_;
};

/// Best-first incremental nearest-neighbour iterator (Hjaltason & Samet
/// [33]): pops R-tree entries in non-decreasing MINDIST order. Both node
/// and data entries are reported, because BSP's termination test (line 7
/// of Algorithm 1) applies to either kind; callers expand node entries by
/// default but may stop early.
class NearestIterator {
 public:
  struct Item {
    double distance = 0.0;
    bool is_node = false;
    /// Node id when is_node, else the opaque data payload.
    uint64_t id = 0;
    Rect rect;
  };

  NearestIterator(const RTree* tree, const Point& query);
  /// Traverses through `accessor` (any backend); the accessor must
  /// outlive the iterator.
  NearestIterator(const SpatialAccessor* accessor, const Point& query);

  /// Pops the next entry in distance order; node entries are expanded
  /// automatically (children pushed) before being returned. Returns false
  /// when the tree is exhausted — or on a node-read error, which parks
  /// the sticky status() (callers must check it after the stream ends).
  bool Next(Item* out);

  /// Like Next() but skips node items, returning only data entries — the
  /// classic incremental kNN stream (used by the TA baseline).
  bool NextData(Item* out);

  /// Number of R-tree nodes popped so far (the paper's "R-tree nodes
  /// accessed" metric).
  uint64_t nodes_accessed() const { return nodes_accessed_; }

  /// OK unless a node read failed, after which the stream is over.
  const Status& status() const { return status_; }

  /// Page-I/O accumulated by this traversal (zero for memory backends).
  const PageIoCounters& io() const { return cursor_.io; }

 private:
  struct HeapItem {
    double distance;
    bool is_node;
    uint64_t id;
    Rect rect;
    bool operator>(const HeapItem& o) const { return distance > o.distance; }
  };

  /// Owns the implicit accessor of the (tree, query) constructor;
  /// heap-allocated so moving the iterator keeps accessor_ valid.
  std::unique_ptr<MemorySpatialAccessor> owned_accessor_;
  const SpatialAccessor* accessor_;
  Point query_;
  SpatialCursor cursor_;
  Status status_;
  std::vector<HeapItem> heap_;  // min-heap via std::push_heap with greater
  uint64_t nodes_accessed_ = 0;

  void Push(const HeapItem& item);
  bool Pop(HeapItem* out);
};

/// Thread-safe batched front-end over NearestIterator: NextBatch() hands
/// out contiguous runs of the incremental-NN stream under a mutex, so a
/// pipeline producer can drain the stream in amortized-lock batches (and
/// several consumers may share one stream — each batch is a contiguous,
/// globally ordered run; interleaving across consumers partitions the
/// stream without reordering it). Every item carries its global stream
/// sequence number and the iterator's nodes-accessed count *after* the
/// item was popped, which is exactly the paper's "R-tree nodes accessed"
/// value had a sequential scan stopped on that item — the intra-query
/// ordered-commit stage replays termination from these snapshots.
class BatchedNearestIterator {
 public:
  struct BatchItem {
    NearestIterator::Item item;
    /// 0-based position in the global NN stream.
    uint64_t seq = 0;
    /// NearestIterator::nodes_accessed() right after this item popped.
    uint64_t nodes_accessed = 0;
  };

  BatchedNearestIterator(const RTree* tree, const Point& query)
      : iterator_(tree, query) {}
  BatchedNearestIterator(const SpatialAccessor* accessor, const Point& query)
      : iterator_(accessor, query) {}

  /// Appends up to `max_items` next stream items to `*out` (which is not
  /// cleared). Returns the number appended; 0 means the stream is
  /// exhausted (check status()).
  size_t NextBatch(size_t max_items, std::vector<BatchItem>* out);

  uint64_t nodes_accessed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return iterator_.nodes_accessed();
  }

  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return iterator_.status();
  }

  PageIoCounters io() const {
    std::lock_guard<std::mutex> lock(mu_);
    return iterator_.io();
  }

 private:
  mutable std::mutex mu_;
  NearestIterator iterator_;
  uint64_t next_seq_ = 0;
};

}  // namespace ksp

#endif  // KSP_SPATIAL_RTREE_H_
