#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

#include "common/io_util.h"
#include "common/logging.h"

namespace ksp {

RTree::RTree(Options options) : options_(options) {
  KSP_CHECK(options_.max_entries >= 4) << "fan-out too small";
  KSP_CHECK(options_.min_entries >= 1 &&
            options_.min_entries <= options_.max_entries / 2)
      << "min_entries must be in [1, max_entries/2]";
}

uint32_t RTree::NewNode(bool is_leaf) {
  nodes_.push_back(Node{});
  nodes_.back().is_leaf = is_leaf;
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t RTree::ChooseLeaf(const Rect& rect) const {
  uint32_t current = root_;
  while (!nodes_[current].is_leaf) {
    const Node& node = nodes_[current];
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    uint32_t best_child = kNoNode;
    for (const Entry& e : node.entries) {
      double area = e.rect.Area();
      double enlargement = e.rect.EnlargedArea(rect) - area;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best_child = static_cast<uint32_t>(e.id);
      }
    }
    current = best_child;
  }
  return current;
}

std::pair<size_t, size_t> RTree::PickSeeds(
    const std::vector<Entry>& entries) const {
  if (options_.split == RTreeSplitStrategy::kQuadratic) {
    // Quadratic PickSeeds: the pair wasting the most area together.
    size_t seed_a = 0;
    size_t seed_b = 1;
    double worst_waste = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        double waste = entries[i].rect.EnlargedArea(entries[j].rect) -
                       entries[i].rect.Area() - entries[j].rect.Area();
        if (waste > worst_waste) {
          worst_waste = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    return {seed_a, seed_b};
  }

  // Linear PickSeeds: per dimension, the entries with the highest low
  // side and the lowest high side; pick the dimension with the greatest
  // separation normalized by the total extent.
  double best_separation = -1.0;
  size_t seed_a = 0;
  size_t seed_b = 1;
  for (int dim = 0; dim < 2; ++dim) {
    auto lo = [&](const Entry& e) {
      return dim == 0 ? e.rect.min_x : e.rect.min_y;
    };
    auto hi = [&](const Entry& e) {
      return dim == 0 ? e.rect.max_x : e.rect.max_y;
    };
    size_t highest_low = 0;
    size_t lowest_high = 0;
    double min_lo = lo(entries[0]);
    double max_hi = hi(entries[0]);
    for (size_t i = 0; i < entries.size(); ++i) {
      if (lo(entries[i]) > lo(entries[highest_low])) highest_low = i;
      if (hi(entries[i]) < hi(entries[lowest_high])) lowest_high = i;
      min_lo = std::min(min_lo, lo(entries[i]));
      max_hi = std::max(max_hi, hi(entries[i]));
    }
    double extent = max_hi - min_lo;
    double separation =
        lo(entries[highest_low]) - hi(entries[lowest_high]);
    double normalized = extent > 0 ? separation / extent : 0.0;
    if (normalized > best_separation && highest_low != lowest_high) {
      best_separation = normalized;
      seed_a = highest_low;
      seed_b = lowest_high;
    }
  }
  if (seed_a == seed_b) seed_b = (seed_a + 1) % entries.size();
  return {seed_a, seed_b};
}

uint32_t RTree::SplitNode(uint32_t node_id) {
  Node& node = nodes_[node_id];
  std::vector<Entry> entries = std::move(node.entries);
  node.entries.clear();
  const uint32_t sibling_id = NewNode(nodes_[node_id].is_leaf);
  // NewNode may reallocate nodes_; re-take the reference.
  Node& left = nodes_[node_id];
  Node& right = nodes_[sibling_id];
  right.parent = left.parent;

  auto [seed_a, seed_b] = PickSeeds(entries);

  Rect rect_left = entries[seed_a].rect;
  Rect rect_right = entries[seed_b].rect;
  left.entries.push_back(entries[seed_a]);
  right.entries.push_back(entries[seed_b]);
  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // Force-assign if a group needs every remaining entry to reach the
    // minimum fill.
    if (left.entries.size() + remaining == options_.min_entries) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          left.entries.push_back(entries[i]);
          rect_left.ExpandToInclude(entries[i].rect);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (right.entries.size() + remaining == options_.min_entries) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          right.entries.push_back(entries[i]);
          rect_right.ExpandToInclude(entries[i].rect);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: the entry with the strongest preference for one group.
    size_t best_index = 0;
    double best_diff = -1.0;
    double d_left_best = 0.0;
    double d_right_best = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      double d_left = rect_left.EnlargedArea(entries[i].rect) -
                      rect_left.Area();
      double d_right = rect_right.EnlargedArea(entries[i].rect) -
                       rect_right.Area();
      double diff = std::abs(d_left - d_right);
      if (diff > best_diff) {
        best_diff = diff;
        best_index = i;
        d_left_best = d_left;
        d_right_best = d_right;
      }
    }
    bool to_left;
    if (d_left_best != d_right_best) {
      to_left = d_left_best < d_right_best;
    } else if (rect_left.Area() != rect_right.Area()) {
      to_left = rect_left.Area() < rect_right.Area();
    } else {
      to_left = left.entries.size() <= right.entries.size();
    }
    if (to_left) {
      left.entries.push_back(entries[best_index]);
      rect_left.ExpandToInclude(entries[best_index].rect);
    } else {
      right.entries.push_back(entries[best_index]);
      rect_right.ExpandToInclude(entries[best_index].rect);
    }
    assigned[best_index] = true;
    --remaining;
  }

  // Fix parent pointers of moved children.
  if (!right.is_leaf) {
    for (const Entry& e : right.entries) {
      nodes_[static_cast<uint32_t>(e.id)].parent = sibling_id;
    }
  }
  return sibling_id;
}

void RTree::AdjustTree(uint32_t node_id, uint32_t split_id) {
  while (node_id != root_) {
    uint32_t parent_id = nodes_[node_id].parent;
    Node& parent = nodes_[parent_id];
    // Refresh the MBR of the entry that points to node_id.
    for (Entry& e : parent.entries) {
      if (static_cast<uint32_t>(e.id) == node_id) {
        e.rect = NodeRect(node_id);
        break;
      }
    }
    if (split_id != kNoNode) {
      parent.entries.push_back(Entry{NodeRect(split_id), split_id});
      nodes_[split_id].parent = parent_id;
      if (parent.entries.size() > options_.max_entries) {
        split_id = SplitNode(parent_id);
      } else {
        split_id = kNoNode;
      }
    }
    node_id = parent_id;
  }
  if (split_id != kNoNode) {
    // Root was split: grow the tree by one level.
    uint32_t new_root = NewNode(/*is_leaf=*/false);
    nodes_[new_root].entries.push_back(Entry{NodeRect(node_id), node_id});
    nodes_[new_root].entries.push_back(Entry{NodeRect(split_id), split_id});
    nodes_[node_id].parent = new_root;
    nodes_[split_id].parent = new_root;
    root_ = new_root;
  }
}

void RTree::Insert(const Point& p, uint64_t data) {
  if (root_ == kNoNode) {
    root_ = NewNode(/*is_leaf=*/true);
  }
  uint32_t leaf = ChooseLeaf(Rect::FromPoint(p));
  nodes_[leaf].entries.push_back(Entry{Rect::FromPoint(p), data});
  ++size_;
  uint32_t split = kNoNode;
  if (nodes_[leaf].entries.size() > options_.max_entries) {
    split = SplitNode(leaf);
  }
  AdjustTree(leaf, split);
}

RTree RTree::BulkLoadStr(std::vector<std::pair<Point, uint64_t>> points,
                         Options options) {
  RTree tree(options);
  if (points.empty()) return tree;

  const size_t cap = options.max_entries;
  // Pack leaves: sort by x, tile into vertical slabs, sort slabs by y.
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) { return a.first.x < b.first.x; });
  const size_t num_leaves = (points.size() + cap - 1) / cap;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size = slabs * cap;
  for (size_t begin = 0; begin < points.size(); begin += slab_size) {
    size_t end = std::min(begin + slab_size, points.size());
    std::sort(points.begin() + begin, points.begin() + end,
              [](const auto& a, const auto& b) {
                return a.first.y < b.first.y;
              });
  }

  std::vector<uint32_t> level;  // Node ids of the level under construction.
  for (size_t begin = 0; begin < points.size(); begin += cap) {
    size_t end = std::min(begin + cap, points.size());
    uint32_t id = tree.NewNode(/*is_leaf=*/true);
    for (size_t i = begin; i < end; ++i) {
      tree.nodes_[id].entries.push_back(
          Entry{Rect::FromPoint(points[i].first), points[i].second});
    }
    level.push_back(id);
  }
  tree.size_ = points.size();

  // Pack upper levels by rect center until one node remains.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [&](uint32_t a, uint32_t b) {
      return tree.NodeRect(a).Center().x < tree.NodeRect(b).Center().x;
    });
    const size_t num_parents = (level.size() + cap - 1) / cap;
    const size_t pslabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t pslab_size = pslabs * cap;
    for (size_t begin = 0; begin < level.size(); begin += pslab_size) {
      size_t end = std::min(begin + pslab_size, level.size());
      std::sort(level.begin() + begin, level.begin() + end,
                [&](uint32_t a, uint32_t b) {
                  return tree.NodeRect(a).Center().y <
                         tree.NodeRect(b).Center().y;
                });
    }
    std::vector<uint32_t> parents;
    for (size_t begin = 0; begin < level.size(); begin += cap) {
      size_t end = std::min(begin + cap, level.size());
      uint32_t id = tree.NewNode(/*is_leaf=*/false);
      for (size_t i = begin; i < end; ++i) {
        tree.nodes_[id].entries.push_back(
            Entry{tree.NodeRect(level[i]), level[i]});
        tree.nodes_[level[i]].parent = id;
      }
      parents.push_back(id);
    }
    level = std::move(parents);
  }
  tree.root_ = level.front();
  return tree;
}

uint32_t RTree::Height() const {
  if (root_ == kNoNode) return 0;
  uint32_t h = 1;
  uint32_t current = root_;
  while (!nodes_[current].is_leaf) {
    ++h;
    current = static_cast<uint32_t>(nodes_[current].entries.front().id);
  }
  return h;
}

uint64_t RTree::MemoryUsageBytes() const {
  uint64_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.entries.capacity() * sizeof(Entry);
  }
  return bytes;
}

void RTree::CollectLeafEntries(uint32_t id, std::vector<Entry>* out) const {
  const Node& n = nodes_[id];
  if (n.is_leaf) {
    out->insert(out->end(), n.entries.begin(), n.entries.end());
    return;
  }
  for (const Entry& e : n.entries) {
    CollectLeafEntries(static_cast<uint32_t>(e.id), out);
  }
}

uint64_t RTree::RangeQuery(const Rect& range,
                           std::vector<uint64_t>* out) const {
  if (empty()) return 0;
  uint64_t nodes_visited = 0;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    ++nodes_visited;
    const Node& node = nodes_[id];
    for (const Entry& e : node.entries) {
      if (!range.Intersects(e.rect)) continue;
      if (node.is_leaf) {
        out->push_back(e.id);
      } else {
        stack.push_back(static_cast<uint32_t>(e.id));
      }
    }
  }
  return nodes_visited;
}

std::vector<std::pair<double, uint64_t>> RTree::KnnQuery(const Point& query,
                                                         size_t k) const {
  std::vector<std::pair<double, uint64_t>> out;
  NearestIterator it(this, query);
  NearestIterator::Item item;
  while (out.size() < k && it.NextData(&item)) {
    out.emplace_back(item.distance, item.id);
  }
  return out;
}

namespace {
constexpr uint32_t kRTreeMagic = 0x4B535254u;  // "KSRT"
constexpr uint32_t kRTreeFormatVersion = 2;
/// Smallest serialized node: is_leaf u8 + parent u32 + entry count u64.
constexpr uint64_t kMinNodeBytes = 13;
}  // namespace

Status RTree::Save(const std::string& path, FileSystem* fs,
                   ArtifactInfo* info) const {
  if (fs == nullptr) fs = DefaultFileSystem();
  return WriteArtifactAtomically(
      fs, path, kRTreeMagic, kRTreeFormatVersion,
      [this](ChecksummedWriter* w) -> Status {
        std::string meta;
        AppendPod(&meta, options_.max_entries);
        AppendPod(&meta, options_.min_entries);
        AppendPod(&meta, root_);
        AppendPod<uint64_t>(&meta, size_);
        AppendPod<uint64_t>(&meta, nodes_.size());
        KSP_RETURN_NOT_OK(w->WriteSection(meta));
        std::string nodes;
        for (const Node& node : nodes_) {
          AppendPod<uint8_t>(&nodes, node.is_leaf ? 1 : 0);
          AppendPod(&nodes, node.parent);
          AppendPodVector(&nodes, node.entries);
        }
        return w->WriteSection(nodes);
      },
      info);
}

Status RTree::SaveLegacyForTesting(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  auto write_all = [&]() -> Status {
    KSP_RETURN_NOT_OK(WritePod(f, kRTreeMagic));
    KSP_RETURN_NOT_OK(WritePod(f, options_.max_entries));
    KSP_RETURN_NOT_OK(WritePod(f, options_.min_entries));
    KSP_RETURN_NOT_OK(WritePod(f, root_));
    KSP_RETURN_NOT_OK(WritePod<uint64_t>(f, size_));
    KSP_RETURN_NOT_OK(WritePod<uint64_t>(f, nodes_.size()));
    for (const Node& node : nodes_) {
      KSP_RETURN_NOT_OK(WritePod<uint8_t>(f, node.is_leaf ? 1 : 0));
      KSP_RETURN_NOT_OK(WritePod(f, node.parent));
      KSP_RETURN_NOT_OK(WritePodVector(f, node.entries));
    }
    KSP_RETURN_NOT_OK(WritePod(f, kRTreeMagic));
    return Status::OK();
  };
  Status st = write_all();
  if (std::fclose(f) != 0 && st.ok()) st = Status::IOError("close failed");
  return st;
}

Result<RTree> RTree::LoadLegacy(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  RTree tree;
  auto read_all = [&]() -> Status {
    uint32_t magic = 0;
    KSP_RETURN_NOT_OK(ReadPod(f, &magic));
    if (magic != kRTreeMagic) {
      return Status::Corruption("bad rtree magic: " + path);
    }
    KSP_RETURN_NOT_OK(ReadPod(f, &tree.options_.max_entries));
    KSP_RETURN_NOT_OK(ReadPod(f, &tree.options_.min_entries));
    KSP_RETURN_NOT_OK(ReadPod(f, &tree.root_));
    uint64_t size = 0;
    uint64_t num_nodes = 0;
    KSP_RETURN_NOT_OK(ReadPod(f, &size));
    KSP_RETURN_NOT_OK(ReadPod(f, &num_nodes));
    auto remaining = RemainingFileBytes(f);
    if (!remaining.ok()) return remaining.status();
    if (num_nodes > *remaining / kMinNodeBytes) {
      return CorruptionAt(path, 0, "node count exceeds file size");
    }
    tree.size_ = size;
    tree.nodes_.resize(num_nodes);
    for (Node& node : tree.nodes_) {
      uint8_t is_leaf = 0;
      KSP_RETURN_NOT_OK(ReadPod(f, &is_leaf));
      node.is_leaf = is_leaf != 0;
      KSP_RETURN_NOT_OK(ReadPod(f, &node.parent));
      KSP_RETURN_NOT_OK(ReadPodVector(f, &node.entries));
    }
    KSP_RETURN_NOT_OK(ReadPod(f, &magic));
    if (magic != kRTreeMagic) {
      return Status::Corruption("bad rtree footer: " + path);
    }
    return Status::OK();
  };
  Status st = read_all();
  std::fclose(f);
  if (!st.ok()) return st;
  return tree;
}

Result<RTree> RTree::Load(const std::string& path, FileSystem* fs) {
  if (fs == nullptr) fs = DefaultFileSystem();
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto checksummed = IsChecksummedFile(**file);
  if (!checksummed.ok()) return checksummed.status();
  RTree tree;
  if (*checksummed) {
    ChecksummedReader reader(file->get());
    uint32_t version = 0;
    KSP_RETURN_NOT_OK(reader.Open(kRTreeMagic, &version));
    if (version != kRTreeFormatVersion) {
      return CorruptionAt(path, 4, "unsupported rtree format version " +
                                       std::to_string(version));
    }
    std::string meta;
    const uint64_t meta_offset = reader.offset();
    KSP_RETURN_NOT_OK(reader.ReadSection(&meta));
    uint64_t num_nodes = 0;
    size_t pos = 0;
    auto parse_meta = [&]() -> Status {
      uint64_t size = 0;
      KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree.options_.max_entries));
      KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree.options_.min_entries));
      KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &tree.root_));
      KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &size));
      KSP_RETURN_NOT_OK(ParsePod(meta, &pos, &num_nodes));
      if (pos != meta.size()) {
        return Status::Corruption("meta section size mismatch");
      }
      tree.size_ = size;
      return Status::OK();
    };
    if (Status st = parse_meta(); !st.ok()) {
      return CorruptionAt(path, meta_offset, st.message());
    }
    std::string nodes;
    const uint64_t nodes_offset = reader.offset();
    KSP_RETURN_NOT_OK(reader.ReadSection(&nodes));
    KSP_RETURN_NOT_OK(reader.ExpectEnd());
    if (num_nodes > nodes.size() / kMinNodeBytes) {
      return CorruptionAt(path, nodes_offset,
                          "node count exceeds section size");
    }
    tree.nodes_.resize(num_nodes);
    pos = 0;
    auto parse_nodes = [&]() -> Status {
      for (Node& node : tree.nodes_) {
        uint8_t is_leaf = 0;
        KSP_RETURN_NOT_OK(ParsePod(nodes, &pos, &is_leaf));
        node.is_leaf = is_leaf != 0;
        KSP_RETURN_NOT_OK(ParsePod(nodes, &pos, &node.parent));
        KSP_RETURN_NOT_OK(ParsePodVector(nodes, &pos, &node.entries));
      }
      if (pos != nodes.size()) {
        return Status::Corruption("node section size mismatch");
      }
      return Status::OK();
    };
    if (Status st = parse_nodes(); !st.ok()) {
      return CorruptionAt(path, nodes_offset, st.message());
    }
  } else {
    auto legacy = LoadLegacy(path);
    if (!legacy.ok()) return legacy.status();
    tree = std::move(*legacy);
  }
  if (tree.options_.max_entries < 4 || tree.options_.min_entries < 1 ||
      tree.options_.min_entries > tree.options_.max_entries / 2) {
    return CorruptionAt(path, 0, "rtree options out of range");
  }
  if (tree.root_ != kNoNode && tree.root_ >= tree.nodes_.size()) {
    return CorruptionAt(path, 0, "rtree root out of range");
  }
  return tree;
}

NearestIterator::NearestIterator(const RTree* tree, const Point& query)
    : owned_accessor_(std::make_unique<MemorySpatialAccessor>(tree)),
      accessor_(owned_accessor_.get()),
      query_(query) {
  if (!accessor_->empty()) {
    uint32_t root = accessor_->root();
    Rect rect = Rect::Empty();
    status_ = accessor_->NodeRect(root, &cursor_, &rect);
    if (!status_.ok()) return;
    Push(HeapItem{MinDist(query_, rect), /*is_node=*/true, root, rect});
  }
}

NearestIterator::NearestIterator(const SpatialAccessor* accessor,
                                 const Point& query)
    : accessor_(accessor), query_(query) {
  if (!accessor_->empty()) {
    uint32_t root = accessor_->root();
    Rect rect = Rect::Empty();
    status_ = accessor_->NodeRect(root, &cursor_, &rect);
    if (!status_.ok()) return;
    Push(HeapItem{MinDist(query_, rect), /*is_node=*/true, root, rect});
  }
}

void NearestIterator::Push(const HeapItem& item) {
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

bool NearestIterator::Pop(HeapItem* out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  *out = heap_.back();
  heap_.pop_back();
  return true;
}

bool NearestIterator::Next(Item* out) {
  if (!status_.ok()) return false;
  HeapItem item;
  if (!Pop(&item)) return false;
  if (item.is_node) {
    ++nodes_accessed_;
    SpatialNodeRef node;
    status_ = accessor_->ReadNode(static_cast<uint32_t>(item.id),
                                  &cursor_, &node);
    if (!status_.ok()) return false;
    for (const RTree::Entry& e : node.entries) {
      Push(HeapItem{MinDist(query_, e.rect), !node.is_leaf, e.id, e.rect});
    }
  }
  out->distance = item.distance;
  out->is_node = item.is_node;
  out->id = item.id;
  out->rect = item.rect;
  return true;
}

bool NearestIterator::NextData(Item* out) {
  while (Next(out)) {
    if (!out->is_node) return true;
  }
  return false;
}

size_t BatchedNearestIterator::NextBatch(size_t max_items,
                                         std::vector<BatchItem>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t appended = 0;
  BatchItem batch_item;
  while (appended < max_items && iterator_.Next(&batch_item.item)) {
    batch_item.seq = next_seq_++;
    batch_item.nodes_accessed = iterator_.nodes_accessed();
    out->push_back(batch_item);
    ++appended;
  }
  return appended;
}

}  // namespace ksp
