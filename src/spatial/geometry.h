#ifndef KSP_SPATIAL_GEOMETRY_H_
#define KSP_SPATIAL_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>

namespace ksp {

/// 2-D point. For geographic data, x = latitude and y = longitude; the
/// paper uses plain Euclidean distance over coordinate degrees
/// (e.g., S(q1, p1) = 0.22 in Example 5), so no great-circle math.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance (cheap comparisons).
inline double DistanceSq(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance — the paper's S(q, p).
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSq(a, b));
}

/// Axis-aligned rectangle (MBR). An empty rectangle has inverted bounds.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Rect Empty() { return Rect(); }

  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  void ExpandToInclude(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void ExpandToInclude(const Rect& r) {
    if (r.IsEmpty()) return;
    min_x = std::min(min_x, r.min_x);
    min_y = std::min(min_y, r.min_y);
    max_x = std::max(max_x, r.max_x);
    max_y = std::max(max_y, r.max_y);
  }

  double Area() const {
    if (IsEmpty()) return 0.0;
    return (max_x - min_x) * (max_y - min_y);
  }

  /// Area of the MBR of this rect and `r`.
  double EnlargedArea(const Rect& r) const {
    Rect u = *this;
    u.ExpandToInclude(r);
    return u.Area();
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const Rect& r) const {
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// MINDIST(q, R): minimum distance from a point to a rectangle
/// (0 if inside) — the lower bound used by best-first R-tree search.
inline double MinDistSq(const Point& q, const Rect& r) {
  double dx = std::max({r.min_x - q.x, 0.0, q.x - r.max_x});
  double dy = std::max({r.min_y - q.y, 0.0, q.y - r.max_y});
  return dx * dx + dy * dy;
}

inline double MinDist(const Point& q, const Rect& r) {
  return std::sqrt(MinDistSq(q, r));
}

}  // namespace ksp

#endif  // KSP_SPATIAL_GEOMETRY_H_
