#ifndef KSP_COMMON_LOGGING_H_
#define KSP_COMMON_LOGGING_H_

#include <cassert>
#include <sstream>
#include <string>

namespace ksp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink that emits one line to stderr on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ksp

#define KSP_LOG(level)                                         \
  ::ksp::internal_logging::LogMessage(::ksp::LogLevel::level, \
                                      __FILE__, __LINE__)

/// Always-on invariant check (independent of NDEBUG); aborts with a message.
#define KSP_CHECK(cond)                                          \
  if (!(cond))                                                   \
  KSP_LOG(kFatal) << "Check failed: " #cond " "

#define KSP_DCHECK(cond) assert(cond)

#endif  // KSP_COMMON_LOGGING_H_
