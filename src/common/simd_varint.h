#ifndef KSP_COMMON_SIMD_VARINT_H_
#define KSP_COMMON_SIMD_VARINT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ksp {

/// ISA levels of the varint-delta postings decoder (DESIGN.md §13).
/// kScalar is the reference implementation — byte-for-byte the historic
/// GetVarint64 loop; the vector levels are bit-identical accelerations
/// that fast-path runs of one-byte varints (the common case for
/// delta-encoded sorted id lists) and fall back to the scalar step for
/// multi-byte encodings, truncation, and corruption.
enum class VarintIsa : int {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
};

const char* VarintIsaName(VarintIsa isa);

/// ISA levels usable on this machine, ascending, always starting with
/// kScalar. Runtime dispatch picks the last entry; tests iterate all of
/// them for differential coverage.
std::vector<VarintIsa> SupportedVarintIsas();

/// The level DecodeVarintDeltas currently dispatches to (the best
/// supported one unless overridden).
VarintIsa ActiveVarintIsa();

/// Forces dispatch to `isa` (which must be supported) until reset with
/// ResetVarintIsaForTesting. Test-only: not synchronized with concurrent
/// decodes.
void SetVarintIsaForTesting(VarintIsa isa);
void ResetVarintIsaForTesting();

/// No bound: decoded ids are appended unchecked (mod 2^32, like the
/// scalar cast) — the disk-postings contract.
inline constexpr uint64_t kVarintNoLimit = ~uint64_t{0};

/// Decodes `count` delta-encoded varints from `src` starting at `*pos`,
/// appending the running sums to `*out` as VertexId: the first varint is
/// the absolute id, each later one the gap to its predecessor. With
/// `limit != kVarintNoLimit`, any running sum >= limit fails with
/// Status::Corruption(range_error); truncated or over-long varints fail
/// like GetVarint64. On failure *out may hold a prefix and *pos is
/// unspecified — callers discard both. All ISA levels produce identical
/// bytes and identical statuses for every input.
Status DecodeVarintDeltas(std::string_view src, size_t* pos, uint64_t count,
                          uint64_t limit, const char* range_error,
                          std::vector<VertexId>* out);

}  // namespace ksp

#endif  // KSP_COMMON_SIMD_VARINT_H_
