#include "common/io_util.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/varint.h"

namespace ksp {

namespace {

std::string OffsetTag(const std::string& path, uint64_t offset) {
  return path + " @" + std::to_string(offset) + ": ";
}

constexpr size_t kStreamChunk = 1 << 16;

}  // namespace

Status IOErrorAt(const std::string& path, uint64_t offset, std::string msg) {
  return Status::IOError(OffsetTag(path, offset) + std::move(msg));
}

Status CorruptionAt(const std::string& path, uint64_t offset,
                    std::string msg) {
  return Status::Corruption(OffsetTag(path, offset) + std::move(msg));
}

Result<uint64_t> RemainingFileBytes(std::FILE* f) {
  long pos = std::ftell(f);
  if (pos < 0) return Status::IOError("ftell failed");
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("seek to end failed");
  }
  long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) {
    return Status::IOError("seek back failed");
  }
  return static_cast<uint64_t>(end - pos);
}

Status ChecksummedWriter::RawAppend(std::string_view data) {
  KSP_RETURN_NOT_OK(file_->Append(data));
  file_crc_ = Crc32cExtend(file_crc_, data);
  offset_ += data.size();
  return Status::OK();
}

Status ChecksummedWriter::Start(uint32_t artifact_magic,
                                uint32_t artifact_version) {
  std::string magic;
  PutFixed32(&magic, kChecksummedFileMagic);
  KSP_RETURN_NOT_OK(RawAppend(magic));
  std::string header;
  PutFixed32(&header, artifact_magic);
  PutFixed32(&header, artifact_version);
  return WriteSection(header);
}

Status ChecksummedWriter::WriteSection(std::string_view payload) {
  std::string frame;
  PutFixed64(&frame, payload.size());
  KSP_RETURN_NOT_OK(RawAppend(frame));
  KSP_RETURN_NOT_OK(RawAppend(payload));
  frame.clear();
  PutFixed32(&frame, Crc32c(payload));
  return RawAppend(frame);
}

Status ChecksummedWriter::Finish() { return file_->Sync(); }

Status ChecksummedReader::ReadFrameHeader(uint64_t* payload_size) {
  const uint64_t file_size = file_->Size();
  if (offset_ > file_size || file_size - offset_ < 8) {
    return CorruptionAt(path(), offset_, "truncated section length");
  }
  std::string frame;
  KSP_RETURN_NOT_OK(file_->Read(offset_, 8, &frame));
  if (frame.size() != 8) {
    return IOErrorAt(path(), offset_, "short read of section length");
  }
  size_t pos = 0;
  uint64_t length = 0;
  KSP_RETURN_NOT_OK(GetFixed64(frame, &pos, &length));
  // Length prefix must leave room for the payload AND its trailing CRC
  // inside the real file — checked before any allocation.
  const uint64_t remaining = file_size - offset_ - 8;
  if (length > remaining || remaining - length < 4) {
    return CorruptionAt(path(), offset_,
                        "section length " + std::to_string(length) +
                            " exceeds remaining file bytes");
  }
  *payload_size = length;
  return Status::OK();
}

Status ChecksummedReader::Open(uint32_t expected_artifact_magic,
                               uint32_t* version) {
  std::string magic_bytes;
  KSP_RETURN_NOT_OK(file_->Read(0, 4, &magic_bytes));
  size_t pos = 0;
  uint32_t magic = 0;
  if (magic_bytes.size() != 4 ||
      !GetFixed32(magic_bytes, &pos, &magic).ok() ||
      magic != kChecksummedFileMagic) {
    return CorruptionAt(path(), 0, "not a checksummed artifact container");
  }
  offset_ = 4;
  std::string header;
  KSP_RETURN_NOT_OK(ReadSection(&header));
  pos = 0;
  uint32_t artifact_magic = 0;
  Status st = GetFixed32(header, &pos, &artifact_magic);
  if (st.ok()) st = GetFixed32(header, &pos, version);
  if (!st.ok() || pos != header.size()) {
    return CorruptionAt(path(), 4, "malformed artifact header section");
  }
  if (artifact_magic != expected_artifact_magic) {
    return CorruptionAt(path(), 4, "artifact magic mismatch");
  }
  return Status::OK();
}

Status ChecksummedReader::ReadSection(std::string* payload) {
  const uint64_t frame_offset = offset_;
  uint64_t length = 0;
  KSP_RETURN_NOT_OK(ReadFrameHeader(&length));
  KSP_RETURN_NOT_OK(
      file_->Read(offset_ + 8, static_cast<size_t>(length), payload));
  if (payload->size() != length) {
    return IOErrorAt(path(), frame_offset, "short read of section payload");
  }
  std::string crc_bytes;
  KSP_RETURN_NOT_OK(file_->Read(offset_ + 8 + length, 4, &crc_bytes));
  size_t pos = 0;
  uint32_t stored_crc = 0;
  if (crc_bytes.size() != 4 ||
      !GetFixed32(crc_bytes, &pos, &stored_crc).ok()) {
    return CorruptionAt(path(), offset_ + 8 + length,
                        "truncated section checksum");
  }
  if (stored_crc != Crc32c(*payload)) {
    return CorruptionAt(path(), frame_offset, "section checksum mismatch");
  }
  offset_ += 8 + length + 4;
  return Status::OK();
}

Status ChecksummedReader::VerifySection(uint64_t* payload_offset,
                                        uint64_t* payload_size) {
  const uint64_t frame_offset = offset_;
  uint64_t length = 0;
  KSP_RETURN_NOT_OK(ReadFrameHeader(&length));
  uint32_t crc = 0;
  std::string chunk;
  for (uint64_t done = 0; done < length;) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kStreamChunk, length - done));
    KSP_RETURN_NOT_OK(file_->Read(offset_ + 8 + done, want, &chunk));
    if (chunk.size() != want) {
      return IOErrorAt(path(), frame_offset,
                       "short read of section payload");
    }
    crc = Crc32cExtend(crc, chunk);
    done += want;
  }
  std::string crc_bytes;
  KSP_RETURN_NOT_OK(file_->Read(offset_ + 8 + length, 4, &crc_bytes));
  size_t pos = 0;
  uint32_t stored_crc = 0;
  if (crc_bytes.size() != 4 ||
      !GetFixed32(crc_bytes, &pos, &stored_crc).ok()) {
    return CorruptionAt(path(), offset_ + 8 + length,
                        "truncated section checksum");
  }
  if (stored_crc != crc) {
    return CorruptionAt(path(), frame_offset, "section checksum mismatch");
  }
  *payload_offset = offset_ + 8;
  *payload_size = length;
  offset_ += 8 + length + 4;
  return Status::OK();
}

Status ChecksummedReader::ExpectEnd() const {
  if (offset_ != file_->Size()) {
    return CorruptionAt(path(), offset_,
                        "trailing bytes after final section");
  }
  return Status::OK();
}

Result<bool> IsChecksummedFile(const RandomAccessFile& file) {
  std::string magic_bytes;
  KSP_RETURN_NOT_OK(file.Read(0, 4, &magic_bytes));
  if (magic_bytes.size() != 4) {
    return CorruptionAt(file.path(), 0, "file too small for any artifact");
  }
  size_t pos = 0;
  uint32_t magic = 0;
  KSP_RETURN_NOT_OK(GetFixed32(magic_bytes, &pos, &magic));
  return magic == kChecksummedFileMagic;
}

Status WriteArtifactAtomically(
    FileSystem* fs, const std::string& path, uint32_t artifact_magic,
    uint32_t artifact_version,
    const std::function<Status(ChecksummedWriter*)>& body,
    ArtifactInfo* info) {
  const std::string tmp = path + ".tmp";
  auto file = fs->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  ChecksummedWriter writer(file->get());
  Status st = writer.Start(artifact_magic, artifact_version);
  if (st.ok()) st = body(&writer);
  if (st.ok()) st = writer.Finish();
  Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = fs->RenameFile(tmp, path);
  if (!st.ok()) {
    fs->RemoveFile(tmp);  // Best effort; `path` is untouched either way.
    return st;
  }
  KSP_RETURN_NOT_OK(fs->SyncDir(DirName(path)));
  if (info != nullptr) {
    info->size_bytes = writer.bytes_written();
    info->crc32c = writer.file_crc();
    info->format_version = artifact_version;
  }
  return Status::OK();
}

Status ChecksumWholeFile(FileSystem* fs, const std::string& path,
                         ArtifactInfo* info) {
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  const uint64_t size = (*file)->Size();
  uint32_t crc = 0;
  std::string chunk;
  for (uint64_t done = 0; done < size;) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kStreamChunk, size - done));
    KSP_RETURN_NOT_OK((*file)->Read(done, want, &chunk));
    if (chunk.size() != want) {
      return IOErrorAt(path, done, "short read while checksumming");
    }
    crc = Crc32cExtend(crc, chunk);
    done += want;
  }
  info->size_bytes = size;
  info->crc32c = crc;
  return Status::OK();
}

}  // namespace ksp
