#include "common/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace ksp {

std::vector<std::string_view> SplitAny(std::string_view s,
                                       std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ksp
