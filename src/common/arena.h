#ifndef KSP_COMMON_ARENA_H_
#define KSP_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace ksp {

/// Bump-pointer arena for short-lived scratch (DESIGN.md §13). One owner,
/// no per-object destruction: Allocate() hands out raw aligned storage
/// from a chain of blocks and Reset() recycles every byte at once, so a
/// loop that resets per iteration (the TQSP per-candidate scratch) does
/// exactly zero heap traffic after its first, largest iteration.
///
/// Lifetime rules:
///  - Allocations are valid until the next Reset() (or destruction).
///  - Reset() keeps the single largest block and frees the rest, so the
///    footprint converges to one block sized for the worst iteration.
///  - Requests larger than the block size get a dedicated block (the
///    large-allocation fallback); they are serviced, not rejected.
///  - Not thread-safe: one arena per executor/worker, like the BFS
///    scratch arrays.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; bytes == 0 yields a unique aligned pointer
  /// into the current block.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    KSP_DCHECK(align != 0 && (align & (align - 1)) == 0);
    if (current_ != nullptr) {
      uintptr_t p = reinterpret_cast<uintptr_t>(current_->data.get()) + used_;
      const uintptr_t aligned = (p + (align - 1)) & ~(uintptr_t{align} - 1);
      const size_t padded = used_ + (aligned - p) + bytes;
      if (padded <= current_->size) {
        used_ = padded;
        allocated_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
    }
    return AllocateSlow(bytes, align);
  }

  /// Typed array allocation for trivially-destructible T (the arena never
  /// runs destructors). The storage is uninitialized.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena does not run destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Recycles every allocation. The largest block is kept for reuse
  /// (bump pointer rewinds to its start); all other blocks are freed.
  void Reset() {
    if (blocks_.empty()) return;
    size_t keep = 0;
    for (size_t i = 1; i < blocks_.size(); ++i) {
      if (blocks_[i].size > blocks_[keep].size) keep = i;
    }
    if (keep != 0) blocks_[0] = std::move(blocks_[keep]);
    blocks_.resize(1);
    current_ = &blocks_[0];
    used_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t bytes_allocated() const { return allocated_; }

  /// Total block footprint currently held (survives Reset for the
  /// retained block).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void* AllocateSlow(size_t bytes, size_t align) {
    // A fresh block is alignof(max_align_t)-aligned by operator new;
    // over-aligned requests pad the block so the bump below succeeds.
    const size_t slack = align > alignof(std::max_align_t) ? align : 0;
    const size_t want = bytes + slack;
    const size_t size = want > block_bytes_ ? want : block_bytes_;
    Block block;
    block.data = std::make_unique<std::byte[]>(size);
    block.size = size;
    blocks_.push_back(std::move(block));
    current_ = &blocks_.back();
    const uintptr_t p = reinterpret_cast<uintptr_t>(current_->data.get());
    const uintptr_t aligned = (p + (align - 1)) & ~(uintptr_t{align} - 1);
    used_ = (aligned - p) + bytes;
    allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  const size_t block_bytes_;
  std::vector<Block> blocks_;
  Block* current_ = nullptr;  // &blocks_.back() when non-null
  size_t used_ = 0;           // bump offset within *current_
  size_t allocated_ = 0;
};

/// Minimal growable array over an Arena for trivially-copyable T. Growth
/// allocates a doubled span from the arena and memcpys; the old span is
/// simply abandoned until the owning arena resets. clear() keeps the
/// current span, so per-candidate reuse within one arena epoch is free.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec elements are moved with memcpy");

 public:
  explicit ArenaVec(Arena* arena) : arena_(arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Reallocate(n);
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Grow() { Reallocate(capacity_ == 0 ? 16 : capacity_ * 2); }

  void Reallocate(size_t n) {
    T* fresh = arena_->AllocateArray<T>(n);
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = n;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace ksp

#endif  // KSP_COMMON_ARENA_H_
