#include "common/status.h"

namespace ksp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out.append(": ");
  out.append(message());
  return out;
}

}  // namespace ksp
