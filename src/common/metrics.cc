#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace ksp {

namespace metrics_internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

namespace {

/// Shortest round-trippable representation; integers print without a
/// trailing ".0" so golden exports stay readable.
std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::stod(buf) == value) break;
  }
  return buf;
}

/// JSON has no Inf; quantiles over an empty histogram export as 0.
std::string FormatJsonDouble(double value) {
  if (std::isinf(value) || std::isnan(value)) return "0";
  return FormatDouble(value);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  // Metric names are code-owned [a-zA-Z0-9_:] identifiers; no escaping.
  out->push_back('"');
  out->append(name);
  out->append("\": ");
}

}  // namespace
}  // namespace metrics_internal

using metrics_internal::FormatDouble;
using metrics_internal::FormatJsonDouble;

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, rounded up).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t next = cumulative + counts[i];
    if (rank <= next && counts[i] > 0) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lower;  // +inf bucket: lower bound.
      const double upper = bounds[i];
      // Linear interpolation of the rank inside the bucket.
      const double fraction = (static_cast<double>(rank) -
                               static_cast<double>(cumulative)) /
                              static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (count == 0 && counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty()) return;
  KSP_CHECK(bounds == other.bounds)
      << "merging histograms with different bucket bounds";
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  KSP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
            std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                bounds_.end())
      << "histogram bounds must be strictly ascending";
  const size_t num_buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<uint64_t>[]>(num_buckets);
    for (size_t i = 0; i < num_buckets; ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  // lower_bound keeps Prometheus le-semantics: a value equal to a bucket
  // bound belongs to that bucket (le is ≤, not <).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[metrics_internal::ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  metrics_internal::AtomicAddDouble(&shard.sum, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < snapshot.counts.size(); ++i) {
      snapshot.counts[i] +=
          shard.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snapshot.counts) snapshot.count += c;
  return snapshot;
}

std::vector<double> Histogram::DefaultLatencyBucketsMs() {
  return {0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,
          10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
          2500.0, 5000.0, 10000.0, 30000.0, 120000.0};
}

std::vector<double> Histogram::DefaultLatencyBucketsUs() {
  return {1.0,    2.5,    5.0,    10.0,    25.0,    50.0,    100.0,
          250.0,  500.0,  1000.0, 2500.0,  5000.0,  10000.0, 25000.0,
          50000.0, 100000.0, 1000000.0, 10000000.0};
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].MergeFrom(histogram);
  }
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      cumulative += histogram.counts[i];
      const std::string le = i < histogram.bounds.size()
                                 ? FormatDouble(histogram.bounds[i])
                                 : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + FormatDouble(histogram.sum) + "\n";
    out += name + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  using metrics_internal::AppendJsonKey;
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += FormatJsonDouble(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\": " + std::to_string(histogram.count);
    out += ", \"sum\": " + FormatJsonDouble(histogram.sum);
    out += ", \"p50\": " + FormatJsonDouble(histogram.p50());
    out += ", \"p95\": " + FormatJsonDouble(histogram.p95());
    out += ", \"p99\": " + FormatJsonDouble(histogram.p99());
    out += ", \"buckets\": [";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out += ", ";
      const std::string le = i < histogram.bounds.size()
                                 ? FormatJsonDouble(histogram.bounds[i])
                                 : "\"+Inf\"";
      out += "{\"le\": " + le +
             ", \"count\": " + std::to_string(histogram.counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  KSP_CHECK(gauges_.find(name) == gauges_.end() &&
            histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another kind";
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  KSP_CHECK(counters_.find(name) == counters_.end() &&
            histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another kind";
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBucketsMs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  KSP_CHECK(counters_.find(name) == counters_.end() &&
            gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  } else {
    KSP_CHECK(it->second->bounds() == bounds)
        << "histogram '" << name << "' re-registered with other bounds";
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace ksp
