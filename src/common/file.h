#ifndef KSP_COMMON_FILE_H_
#define KSP_COMMON_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace ksp {

/// Minimal filesystem abstraction the persistence layer is written
/// against. Production code uses the POSIX implementation returned by
/// DefaultFileSystem(); tests substitute a FaultInjectingFileSystem to
/// prove that every save/load path degrades to a clean Status (never a
/// crash or a half-loaded index) when I/O fails mid-operation.

/// Append-only output file. Append buffers; Sync() pushes library and OS
/// buffers to stable storage (fflush + fsync) — the atomic-rename commit
/// protocol requires a successful Sync before the rename.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  /// Closing twice is harmless; the destructor closes (discarding errors)
  /// if the caller never did.
  virtual Status Close() = 0;
  virtual const std::string& path() const = 0;
};

/// Positioned (pread-style) input file, safe for concurrent readers.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `*out` (replacing its
  /// contents). Short results at end-of-file are not an error — callers
  /// that need exactly `n` bytes must check out->size().
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual uint64_t Size() const = 0;
  virtual const std::string& path() const = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates (truncating) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// fsyncs the directory itself so a preceding RenameFile survives power
  /// loss (the rename is not durable until its directory entry is).
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// Process-wide POSIX filesystem singleton.
FileSystem* DefaultFileSystem();

/// Directory part of `path` ("." when there is no separator) — the
/// directory WriteArtifactAtomically must SyncDir after its rename.
std::string DirName(const std::string& path);

}  // namespace ksp

#endif  // KSP_COMMON_FILE_H_
