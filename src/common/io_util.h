#ifndef KSP_COMMON_IO_UTIL_H_
#define KSP_COMMON_IO_UTIL_H_

#include <cstdio>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace ksp {

/// Raw binary IO helpers for trivially-copyable index payloads (the saved
/// artifacts are machine-local caches, not interchange formats).

template <typename T>
Status WritePod(std::FILE* f, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (std::fwrite(&value, sizeof(T), 1, f) != 1) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

template <typename T>
Status ReadPod(std::FILE* f, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (std::fread(value, sizeof(T), 1, f) != 1) {
    return Status::IOError("short read");
  }
  return Status::OK();
}

/// Length-prefixed vector of PODs.
template <typename T>
Status WritePodVector(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  KSP_RETURN_NOT_OK(WritePod<uint64_t>(f, v.size()));
  if (!v.empty() &&
      std::fwrite(v.data(), sizeof(T), v.size(), f) != v.size()) {
    return Status::IOError("short vector write");
  }
  return Status::OK();
}

template <typename T>
Status ReadPodVector(std::FILE* f, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  KSP_RETURN_NOT_OK(ReadPod(f, &size));
  v->resize(size);
  if (size != 0 && std::fread(v->data(), sizeof(T), size, f) != size) {
    return Status::IOError("short vector read");
  }
  return Status::OK();
}

}  // namespace ksp

#endif  // KSP_COMMON_IO_UTIL_H_
