#ifndef KSP_COMMON_IO_UTIL_H_
#define KSP_COMMON_IO_UTIL_H_

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/file.h"
#include "common/status.h"

namespace ksp {

/// Binary IO helpers for trivially-copyable index payloads (the saved
/// artifacts are machine-local caches, not interchange formats), plus the
/// checksummed container framing every artifact codec writes since format
/// v2:
///
///   file    := [container magic u32] header-section section...
///   section := [payload length u64][payload bytes][crc32c u32]
///
/// The header section's payload is [artifact magic u32][format version
/// u32], so everything past the 4-byte container magic is CRC-protected.
/// Readers validate every section length against the actual file size
/// BEFORE allocating, so a corrupt length prefix yields Status::Corruption
/// instead of a multi-GB resize. All persistence errors carry the file
/// path and byte offset.

/// Error constructors that tag the failing file and byte offset.
Status IOErrorAt(const std::string& path, uint64_t offset, std::string msg);
Status CorruptionAt(const std::string& path, uint64_t offset,
                    std::string msg);

/// ---- Legacy stdio helpers (v1 artifact readers only) ----

template <typename T>
Status WritePod(std::FILE* f, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (std::fwrite(&value, sizeof(T), 1, f) != 1) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

template <typename T>
Status ReadPod(std::FILE* f, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (std::fread(value, sizeof(T), 1, f) != 1) {
    return Status::IOError("short read");
  }
  return Status::OK();
}

/// Length-prefixed vector of PODs.
template <typename T>
Status WritePodVector(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  KSP_RETURN_NOT_OK(WritePod<uint64_t>(f, v.size()));
  if (!v.empty() &&
      std::fwrite(v.data(), sizeof(T), v.size(), f) != v.size()) {
    return Status::IOError("short vector write");
  }
  return Status::OK();
}

/// Bytes between the current position and end-of-file, or IOError.
Result<uint64_t> RemainingFileBytes(std::FILE* f);

/// Reads a length-prefixed vector, rejecting any length prefix that
/// exceeds the remaining file bytes with Status::Corruption BEFORE
/// resizing (a 16-byte corrupt file must not request a multi-GB
/// allocation).
template <typename T>
Status ReadPodVector(std::FILE* f, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  KSP_RETURN_NOT_OK(ReadPod(f, &size));
  auto remaining = RemainingFileBytes(f);
  if (!remaining.ok()) return remaining.status();
  if (size > *remaining / sizeof(T)) {
    return Status::Corruption(
        "vector length prefix exceeds remaining file bytes");
  }
  v->resize(size);
  if (size != 0 && std::fread(v->data(), sizeof(T), size, f) != size) {
    return Status::IOError("short vector read");
  }
  return Status::OK();
}

/// ---- Buffer-based POD codec (v2 artifact payload sections) ----

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void AppendPodVector(std::string* buf, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendPod<uint64_t>(buf, v.size());
  if (!v.empty()) {
    buf->append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(T));
  }
}

template <typename T>
Status ParsePod(std::string_view src, size_t* pos, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*pos > src.size() || sizeof(T) > src.size() - *pos) {
    return Status::Corruption("truncated POD field");
  }
  std::memcpy(value, src.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return Status::OK();
}

/// Bounds-checks the length prefix against the remaining buffer before
/// resizing.
template <typename T>
Status ParsePodVector(std::string_view src, size_t* pos, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  KSP_RETURN_NOT_OK(ParsePod(src, pos, &size));
  if (size > (src.size() - *pos) / sizeof(T)) {
    return Status::Corruption(
        "vector length prefix exceeds section payload");
  }
  v->resize(size);
  if (size != 0) {
    std::memcpy(v->data(), src.data() + *pos, size * sizeof(T));
    *pos += size * sizeof(T);
  }
  return Status::OK();
}

/// ---- Checksummed container framing ----

/// First four bytes of every v2 artifact ("CPSK" on disk); legacy v1
/// files start with their artifact-specific magic instead.
constexpr uint32_t kChecksummedFileMagic = 0x4B535043u;

/// Writes one checksummed container to a WritableFile: Start() frames the
/// header, WriteSection() frames each payload, Finish() syncs. Tracks the
/// running whole-file CRC32C and byte count for the saver's MANIFEST
/// entry.
class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(WritableFile* file) : file_(file) {}

  Status Start(uint32_t artifact_magic, uint32_t artifact_version);
  Status WriteSection(std::string_view payload);
  /// Syncs to stable storage; call before closing/renaming.
  Status Finish();

  uint64_t bytes_written() const { return offset_; }
  /// CRC32C of every byte written so far (the whole-file checksum the
  /// MANIFEST records).
  uint32_t file_crc() const { return file_crc_; }

 private:
  Status RawAppend(std::string_view data);

  WritableFile* file_;
  uint64_t offset_ = 0;
  uint32_t file_crc_ = 0;
};

/// Sequentially reads a checksummed container. Every section length is
/// validated against the real file size before any allocation and every
/// payload is CRC-verified; failures are Status::Corruption with the path
/// and byte offset.
class ChecksummedReader {
 public:
  explicit ChecksummedReader(const RandomAccessFile* file) : file_(file) {}

  /// Validates the container magic and the header section; rejects
  /// artifact-magic mismatches and returns the stored format version.
  Status Open(uint32_t expected_artifact_magic, uint32_t* version);

  /// Reads and CRC-verifies the next section's payload.
  Status ReadSection(std::string* payload);

  /// CRC-verifies the next section in streaming chunks without
  /// materializing it, returning the payload's file range — used for
  /// large regions that are later pread on demand (disk inverted index).
  Status VerifySection(uint64_t* payload_offset, uint64_t* payload_size);

  /// Corruption unless the cursor is exactly at end-of-file.
  Status ExpectEnd() const;

  uint64_t offset() const { return offset_; }
  const std::string& path() const { return file_->path(); }

 private:
  Status ReadFrameHeader(uint64_t* payload_size);

  const RandomAccessFile* file_;
  uint64_t offset_ = 0;
};

/// True when the file starts with kChecksummedFileMagic — the v2/legacy
/// dispatch every artifact Load() performs. Corruption for files shorter
/// than four bytes.
Result<bool> IsChecksummedFile(const RandomAccessFile& file);

/// Size and whole-file checksum of a just-written artifact; recorded in
/// the MANIFEST and re-verified by LoadIndexes before any codec runs.
struct ArtifactInfo {
  uint64_t size_bytes = 0;
  uint32_t crc32c = 0;
  uint32_t format_version = 0;
};

/// Crash-safe artifact commit: writes `path + ".tmp"` via a
/// ChecksummedWriter, fsyncs, atomically renames onto `path`, and fsyncs
/// the directory. On any failure the temp file is removed (best effort)
/// and `path` is untouched — a save interrupted at any point leaves the
/// previous generation intact.
Status WriteArtifactAtomically(
    FileSystem* fs, const std::string& path, uint32_t artifact_magic,
    uint32_t artifact_version,
    const std::function<Status(ChecksummedWriter*)>& body,
    ArtifactInfo* info = nullptr);

/// Streams `path` computing its size and whole-file CRC32C — the
/// MANIFEST verification pass.
Status ChecksumWholeFile(FileSystem* fs, const std::string& path,
                         ArtifactInfo* info);

}  // namespace ksp

#endif  // KSP_COMMON_IO_UTIL_H_
