#ifndef KSP_COMMON_FAULT_INJECTION_H_
#define KSP_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/file.h"

namespace ksp {

/// FileSystem decorator that injects I/O failures at a chosen operation
/// index — the test double behind the crash-safety acceptance criteria:
/// every save interrupted at any fault point must leave the previous
/// on-disk index generation loadable, and every load hitting EIO must
/// fail with a clean Status.
///
/// Usage: run the workload once disarmed to count its operations, then
/// re-run with FailAfter(i) for each i. Once the fault point is reached,
/// EVERY subsequent operation also fails — a crashed process performs no
/// further I/O, so nothing after the fault (renames, cleanup) may be
/// observed either.
class FaultInjectingFileSystem : public FileSystem {
 public:
  enum class FailureMode {
    /// The operation fails outright (EIO-style).
    kEIO,
    /// Appends write a prefix of the data before failing (torn write).
    kShortWrite,
  };

  explicit FaultInjectingFileSystem(FileSystem* base) : base_(base) {}

  /// Arms the injector: the `n`th counted operation (0-based) and every
  /// later one fail.
  void FailAfter(int64_t n, FailureMode mode = FailureMode::kEIO) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_at_ = n;
    mode_ = mode;
  }

  void Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    fail_at_ = -1;
  }

  /// Operations counted since the last ResetCounter().
  int64_t ops_counted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_;
  }

  void ResetCounter() {
    std::lock_guard<std::mutex> lock(mu_);
    ops_ = 0;
  }

  /// Injected failures so far (distinguishes "save failed at the fault"
  /// from "fault point was past the save's last operation").
  int64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_;
  }

  // FileSystem:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultInjectingWritableFile;
  friend class FaultInjectingRandomAccessFile;

  /// Counts one operation; true when it must fail. `mode` receives the
  /// configured failure mode.
  bool CountAndCheck(FailureMode* mode);

  FileSystem* base_;
  mutable std::mutex mu_;
  int64_t ops_ = 0;
  int64_t fail_at_ = -1;
  int64_t faults_ = 0;
  FailureMode mode_ = FailureMode::kEIO;
};

}  // namespace ksp

#endif  // KSP_COMMON_FAULT_INJECTION_H_
