#ifndef KSP_COMMON_CACHE_H_
#define KSP_COMMON_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ksp {

/// Sharded LRU cache with a byte-accounted memory budget.
///
/// The budget is split evenly across `num_shards` shards (rounded up to a
/// power of two); each shard is an independent mutex-protected LRU list +
/// hash map, so concurrent readers/writers on different shards never
/// contend. Every entry carries a caller-supplied `charge` in bytes — the
/// cache itself has no idea how big a Value really is — and a shard evicts
/// from its LRU tail whenever its charged bytes exceed its slice of the
/// budget. Three budget regimes:
///
///   budget == 0           pass-through: Insert is a no-op, Lookup always
///                         misses (still counted as a miss).
///   budget == kUnbounded  never evicts.
///   otherwise             per-shard budget = budget / num_shards; an
///                         entry charged more than a whole shard's budget
///                         evicts everything including itself.
///
/// Hit/miss/eviction counters and the charged-byte total are maintained
/// per shard and summed by GetStats(); Clear() drops entries and bytes
/// but keeps the cumulative counters (they feed monotone metrics).
///
/// Thread-safe. Values are copied out on Lookup, so Value should be
/// cheaply copyable or the caller must tolerate the copy cost.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  static constexpr size_t kUnbounded =
      std::numeric_limits<size_t>::max();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;
    size_t entries = 0;
  };

  explicit ShardedLruCache(size_t budget_bytes, size_t num_shards = 16)
      : budget_(budget_bytes) {
    size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shard_mask_ = shards - 1;
    shards_ = std::vector<Shard>(shards);
    per_shard_budget_ = budget_ == kUnbounded ? kUnbounded
                                              : budget_ / shards;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Inserts or updates `key` (updates refresh recency and re-charge the
  /// entry). Returns the number of entries evicted to make room.
  size_t Insert(const Key& key, Value value, size_t charge) {
    if (!enabled()) return 0;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes += charge;
      shard.bytes -= it->second->charge;
      it->second->value = std::move(value);
      it->second->charge = charge;
      shard.list.splice(shard.list.begin(), shard.list, it->second);
    } else {
      shard.list.push_front(Entry{key, std::move(value), charge});
      shard.map.emplace(key, shard.list.begin());
      shard.bytes += charge;
    }
    size_t evicted = 0;
    while (shard.bytes > per_shard_budget_ && !shard.list.empty()) {
      const Entry& victim = shard.list.back();
      shard.bytes -= victim.charge;
      shard.map.erase(victim.key);
      shard.list.pop_back();
      ++evicted;
    }
    shard.evictions += evicted;
    return evicted;
  }

  /// True (and `*value` filled, recency refreshed) when `key` is cached.
  bool Lookup(const Key& key, Value* value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return false;
    }
    ++shard.hits;
    shard.list.splice(shard.list.begin(), shard.list, it->second);
    *value = it->second->value;
    return true;
  }

  /// Removes `key` if present; returns whether it was.
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.bytes -= it->second->charge;
    shard.list.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  /// Drops every entry (invalidation). Cumulative hit/miss/eviction
  /// counters survive — a Clear is not an eviction.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.list.clear();
      shard.map.clear();
      shard.bytes = 0;
    }
  }

  Stats GetStats() const {
    Stats stats;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.hits += shard.hits;
      stats.misses += shard.misses;
      stats.evictions += shard.evictions;
      stats.bytes += shard.bytes;
      stats.entries += shard.list.size();
    }
    return stats;
  }

  size_t bytes() const { return GetStats().bytes; }
  size_t entries() const { return GetStats().entries; }
  size_t budget_bytes() const { return budget_; }
  size_t num_shards() const { return shard_mask_ + 1; }
  bool enabled() const { return budget_ != 0; }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t charge = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> list;  // Front = most recently used.
    std::unordered_map<Key, typename std::list<Entry>::iterator> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key) {
    // splitmix64 finalizer: spreads clustered hash values (e.g. packed
    // integer keys) across shards.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return shards_[h & shard_mask_];
  }

  size_t budget_;
  size_t per_shard_budget_ = 0;
  size_t shard_mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace ksp

#endif  // KSP_COMMON_CACHE_H_
