#ifndef KSP_COMMON_TIMER_H_
#define KSP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ksp {

/// Monotonic stopwatch measuring wall time. Start()/Stop() accumulate; a
/// freshly constructed timer is stopped at zero.
class Timer {
 public:
  Timer() = default;

  void Start() {
    if (!running_) {
      start_ = Clock::now();
      running_ = true;
    }
  }

  void Stop() {
    if (running_) {
      accumulated_ += Clock::now() - start_;
      running_ = false;
    }
  }

  void Reset() {
    accumulated_ = Duration::zero();
    running_ = false;
  }

  /// Accumulated time including a currently running interval.
  double ElapsedSeconds() const {
    Duration d = accumulated_;
    if (running_) d += Clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return static_cast<int64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  Duration accumulated_ = Duration::zero();
  Clock::time_point start_{};
  bool running_ = false;
};

/// RAII helper adding the scope's wall time to an accumulator (in seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator_seconds)
      : accumulator_(accumulator_seconds) {
    timer_.Start();
  }
  ~ScopedTimer() { *accumulator_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  Timer timer_;
};

}  // namespace ksp

#endif  // KSP_COMMON_TIMER_H_
