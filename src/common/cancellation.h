#ifndef KSP_COMMON_CANCELLATION_H_
#define KSP_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace ksp {

/// Cooperative cancellation + deadline handle shared between a request
/// owner (the serving tier, a test, an interactive caller) and the query
/// executor running on its behalf.
///
/// The executor never blocks on the token; it calls Check() at phase
/// boundaries (per BFS batch, per candidate place, per pipeline commit)
/// and unwinds with a partial-stats error Status when the token fires.
/// The owner may cancel from any thread; all members are thread-safe.
///
/// Check() distinguishes the two trip reasons so the caller can map them
/// to distinct wire-level codes: an explicit Cancel() yields
/// StatusCode::kCancelled, an elapsed deadline yields
/// StatusCode::kDeadlineExceeded. Once tripped a token stays tripped
/// until Reset().
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Safe to call from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline `ms` milliseconds from now. Pass through a fresh
  /// token per request; re-arming replaces the previous deadline.
  void set_deadline_after_ms(int64_t ms) {
    deadline_ns_.store(
        (Clock::now() + std::chrono::milliseconds(ms)).time_since_epoch() /
            std::chrono::nanoseconds(1),
        std::memory_order_release);
  }

  /// Clears any armed deadline without touching the cancel flag.
  void clear_deadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
  }

  /// Test hook: makes the `n`-th subsequent Check() call (1-based) and
  /// every later one report kCancelled. Lets tests trip cancellation at
  /// a deterministic point mid-BFS instead of racing a timer.
  void CancelAfterChecks(uint64_t n) {
    cancel_at_check_.store(n, std::memory_order_release);
    checks_seen_.store(0, std::memory_order_release);
  }

  /// Number of Check() calls observed since construction / the last
  /// CancelAfterChecks(). Tests use this to assert the executors really
  /// polled the token.
  uint64_t checks_seen() const {
    return checks_seen_.load(std::memory_order_acquire);
  }

  /// Returns OK while the request may continue; kCancelled after
  /// Cancel(), kDeadlineExceeded once the armed deadline has elapsed.
  /// Cheap enough for per-iteration use: one relaxed counter bump plus
  /// two atomic loads, and a clock read only when a deadline is armed.
  Status Check() {
    uint64_t seen = checks_seen_.fetch_add(1, std::memory_order_acq_rel) + 1;
    uint64_t trip_at = cancel_at_check_.load(std::memory_order_acquire);
    if (trip_at != 0 && seen >= trip_at) {
      cancelled_.store(true, std::memory_order_release);
    }
    if (cancelled_.load(std::memory_order_acquire)) {
      return Status::Cancelled("request cancelled");
    }
    int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != kNoDeadline &&
        Clock::now().time_since_epoch() / std::chrono::nanoseconds(1) >=
            deadline) {
      return Status::DeadlineExceeded("request deadline elapsed");
    }
    return Status::OK();
  }

  /// True once Cancel() has been observed (does not consult the
  /// deadline; use Check() for the full verdict).
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Returns the token to its initial state so it can serve another
  /// request. Only call between requests, never while an executor may
  /// still poll it.
  void Reset() {
    cancelled_.store(false, std::memory_order_release);
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
    cancel_at_check_.store(0, std::memory_order_release);
    checks_seen_.store(0, std::memory_order_release);
  }

 private:
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<uint64_t> cancel_at_check_{0};
  std::atomic<uint64_t> checks_seen_{0};
};

}  // namespace ksp

#endif  // KSP_COMMON_CANCELLATION_H_
