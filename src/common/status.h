#ifndef KSP_COMMON_STATUS_H_
#define KSP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace ksp {

/// Error category of a Status. Mirrors the small set of failure modes a
/// database-style library needs; kOk statuses carry no allocation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kInternal = 8,
  /// A per-request deadline elapsed before the operation finished; the
  /// work done so far (e.g. partial QueryStats) may still be observable,
  /// but no result is presented as complete.
  kDeadlineExceeded = 9,
  /// The operation was cooperatively cancelled via a CancellationToken.
  kCancelled = 10,
  /// The service cannot take the request right now (admission control /
  /// load shedding / shutdown); the caller should back off and retry.
  kUnavailable = 11,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object used instead of exceptions throughout
/// the library. An OK status is represented by a null state pointer, so
/// success paths never allocate and a Status is one word wide.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Message attached at construction; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  /// True for the two cooperative-interruption codes a query can end
  /// with (deadline elapsed or explicit cancel).
  bool IsInterruption() const {
    return IsDeadlineExceeded() || IsCancelled();
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }

  std::unique_ptr<State> state_;
};

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// themselves return Status.
#define KSP_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::ksp::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace ksp

#endif  // KSP_COMMON_STATUS_H_
