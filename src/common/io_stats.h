#ifndef KSP_COMMON_IO_STATS_H_
#define KSP_COMMON_IO_STATS_H_

#include <cstdint>

namespace ksp {

/// Page-I/O counters accumulated by storage-layer cursors (graph,
/// spatial, postings). Lives in the common layer so spatial/text/storage
/// code can fill it without depending on core's QueryTrace; core call
/// sites fold these into QueryStats and the `page_io` trace phase.
///
/// These counters are deliberately OUTSIDE the backend-invariance
/// contract: the in-memory backend leaves them at zero and the disk
/// backend's hit/miss split depends on buffer-pool budget and history.
struct PageIoCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Wall time spent inside buffer-pool fetches (steady clock).
  int64_t micros = 0;

  void Add(const PageIoCounters& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    micros += other.micros;
  }

  bool IsZero() const {
    return hits == 0 && misses == 0 && evictions == 0 && micros == 0;
  }

  /// Pages touched (every fetch is either a hit or a miss).
  uint64_t Fetches() const { return hits + misses; }
};

}  // namespace ksp

#endif  // KSP_COMMON_IO_STATS_H_
