#ifndef KSP_COMMON_CRC32C_H_
#define KSP_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ksp {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum
/// every persisted index artifact is framed with. Software slicing-by-8
/// implementation; ~GB/s, fast enough that save/load stays I/O bound
/// (bench_table4_storage reports the measured overhead).
///
/// Extend composes: Crc32cExtend(Crc32cExtend(0, a), b) == Crc32c(a ++ b),
/// so whole-file checksums can be streamed in chunks.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

inline uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  return Crc32cExtend(crc, data.data(), data.size());
}

}  // namespace ksp

#endif  // KSP_COMMON_CRC32C_H_
