#ifndef KSP_COMMON_RNG_H_
#define KSP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ksp {

/// Deterministic, fast PRNG (xoshiro256**). Used everywhere randomness is
/// needed so that data generation, query generation and property tests are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli with probability p.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf(s, n) sampler over ranks {0, ..., n-1}: rank r is drawn with
/// probability proportional to 1/(r+1)^s. Precomputes the CDF; O(log n) per
/// sample. Models the skewed keyword frequency of real RDF vocabularies.
class ZipfSampler {
 public:
  /// Requires n >= 1, s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }
  /// Probability mass of rank r.
  double Probability(size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ksp

#endif  // KSP_COMMON_RNG_H_
