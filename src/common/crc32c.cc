#include "common/crc32c.h"

#include <bit>
#include <cstring>

namespace ksp {

namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78u;

struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPolyReflected ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& tb = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      c ^= static_cast<uint32_t>(w);
      const uint32_t hi = static_cast<uint32_t>(w >> 32);
      c = tb[7][c & 0xFF] ^ tb[6][(c >> 8) & 0xFF] ^
          tb[5][(c >> 16) & 0xFF] ^ tb[4][c >> 24] ^ tb[3][hi & 0xFF] ^
          tb[2][(hi >> 8) & 0xFF] ^ tb[1][(hi >> 16) & 0xFF] ^
          tb[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- != 0) {
    c = tb[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ksp
