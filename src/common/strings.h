#ifndef KSP_COMMON_STRINGS_H_
#define KSP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ksp {

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAny(std::string_view s,
                                       std::string_view delims);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a byte count as a human string ("12.3 MB").
std::string HumanBytes(uint64_t bytes);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Escapes a string for embedding inside a JSON string literal
/// (quotes, backslashes, and control characters; no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace ksp

#endif  // KSP_COMMON_STRINGS_H_
