#include "common/varint.h"

#include <cstring>

namespace ksp {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

Status GetVarint64(std::string_view src, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t pos = *offset;
  while (pos < src.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(src[pos++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      *value = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("truncated or over-long varint");
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

Status GetFixed64(std::string_view src, size_t* offset, uint64_t* value) {
  if (*offset + 8 > src.size()) {
    return Status::Corruption("truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(src[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *value = v;
  return Status::OK();
}

Status GetFixed32(std::string_view src, size_t* offset, uint32_t* value) {
  if (*offset + 4 > src.size()) {
    return Status::Corruption("truncated fixed32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(src[*offset + i]))
         << (8 * i);
  }
  *offset += 4;
  *value = v;
  return Status::OK();
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetLengthPrefixed(std::string_view src, size_t* offset,
                         std::string* value) {
  uint64_t len = 0;
  KSP_RETURN_NOT_OK(GetVarint64(src, offset, &len));
  if (*offset + len > src.size()) {
    return Status::Corruption("truncated length-prefixed string");
  }
  value->assign(src.data() + *offset, len);
  *offset += len;
  return Status::OK();
}

}  // namespace ksp
