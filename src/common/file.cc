#include "common/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ksp {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed: " + path + ": " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IOError("file closed: " + path_);
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError(ErrnoMessage("write", path_));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IOError("file closed: " + path_);
    if (std::fflush(file_) != 0) {
      return Status::IOError(ErrnoMessage("fflush", path_));
    }
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IOError(ErrnoMessage("close", path_));
    }
    return Status::OK();
  }

  const std::string& path() const override { return path_; }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    if (offset >= size_) return Status::OK();
    n = static_cast<size_t>(
        std::min<uint64_t>(n, size_ - offset));
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      ssize_t got = ::pread(fd_, out->data() + done, n - done,
                            static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        out->clear();
        return Status::IOError(ErrnoMessage("pread", path_));
      }
      if (got == 0) break;  // Concurrent truncation; surface a short read.
      done += static_cast<size_t>(got);
    }
    out->resize(done);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }
  const std::string& path() const override { return path_; }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError(ErrnoMessage("open for write", path));
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(f, path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status status = Status::IOError(ErrnoMessage("fstat", path));
      ::close(fd);
      return status;
    }
    return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(
        fd, static_cast<uint64_t>(st.st_size), path));
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("rename to " + to, from));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("remove", path));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IOError(ErrnoMessage("open dir", dir));
    Status status;
    if (::fsync(fd) != 0) {
      status = Status::IOError(ErrnoMessage("fsync dir", dir));
    }
    ::close(fd);
    return status;
  }
};

}  // namespace

FileSystem* DefaultFileSystem() {
  static PosixFileSystem fs;
  return &fs;
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace ksp
