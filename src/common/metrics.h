#ifndef KSP_COMMON_METRICS_H_
#define KSP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ksp {

/// Number of cache-line-padded shards per metric. Writers pick a shard by
/// a per-thread index (round-robin assigned on first use), so concurrent
/// increments from up to kMetricShards threads never contend on one cache
/// line; readers sum all shards on scrape.
inline constexpr size_t kMetricShards = 16;

namespace metrics_internal {
/// Stable per-thread shard index in [0, kMetricShards).
size_t ThisThreadShard();

/// Relaxed atomic double addition via CAS (atomic<double>::fetch_add is
/// not universally available).
void AtomicAddDouble(std::atomic<double>* target, double delta);
}  // namespace metrics_internal

/// Monotonically increasing counter. Increment() is lock-free and
/// write-contention-free across threads (thread-local shards); Value()
/// merges the shards and may miss increments that race with the scrape —
/// it is a snapshot, not a barrier.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[metrics_internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (e.g. pool size, queue depth).
/// Set/Add/Value are lock-free; Add uses a CAS loop.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    metrics_internal::AtomicAddDouble(&value_, delta);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged, immutable view of a histogram: per-bucket counts against fixed
/// upper bounds (an implicit +inf bucket is always last), plus the total
/// count and value sum. Quantiles interpolate linearly inside the bucket
/// that crosses the requested rank.
struct HistogramSnapshot {
  /// Finite bucket upper bounds, ascending. counts.size() == bounds.size()
  /// + 1; the final count is the +inf overflow bucket.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  /// Element-wise bucket/count/sum addition. Requires identical bounds.
  void MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram. Observe() is lock-free (thread-local shards);
/// Snapshot() merges the shards. Bucket bounds are fixed at construction.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper bounds, strictly ascending; an
  /// overflow (+inf) bucket is appended implicitly.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default latency buckets in milliseconds: 50 µs to 2 min,
  /// roughly 1-2.5-5 per decade.
  static std::vector<double> DefaultLatencyBucketsMs();
  /// Default latency buckets in microseconds: 1 µs to 10 s.
  static std::vector<double> DefaultLatencyBucketsUs();

 private:
  struct alignas(64) Shard {
    /// counts[bucket]; sized bounds_.size() + 1 (overflow last).
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Merged, order-deterministic view of a whole registry, suitable for
/// cross-thread aggregation (QueryExecutorPool merges one snapshot per
/// worker registry) and for export. Maps are keyed by metric name, so
/// export and merge order never depend on registration order.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Sums counters and histograms; gauges take the maximum (a merged
  /// instantaneous value has no unique answer — max keeps "high water"
  /// semantics). Histograms present on both sides must share bounds.
  void MergeFrom(const MetricsSnapshot& other);

  /// Prometheus text exposition format (# TYPE comments, _bucket/_sum/
  /// _count expansion for histograms), sorted by metric name.
  std::string ToPrometheusText() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {"buckets": [{"le": ..., "count": ...}], "count", "sum",
  /// "p50", "p95", "p99"}}}, sorted by metric name.
  std::string ToJson() const;
};

/// Process- or component-scoped collection of named metrics. Registration
/// (Get*) takes a mutex and returns a stable pointer — callers on hot
/// paths register once and cache the handle; increments/observations on
/// the returned objects are lock-free. Re-registering a name returns the
/// existing metric (histogram bounds must then match the first
/// registration).
///
/// A metric name may hold only one kind; Get* with a mismatched kind
/// crashes (names are a static, code-owned namespace — see DESIGN.md §7).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Default bounds: DefaultLatencyBucketsMs().
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Merged point-in-time view of every registered metric.
  MetricsSnapshot Snapshot() const;

  /// The process-wide registry (e.g. for servers exposing /metrics).
  /// Library code takes an explicit registry instead of assuming it.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ksp

#endif  // KSP_COMMON_METRICS_H_
