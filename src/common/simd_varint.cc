#include "common/simd_varint.h"

#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "common/varint.h"

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define KSP_SIMD_VARINT_X86 1
#include <immintrin.h>
#endif

namespace ksp {

namespace {

/// The reference implementation: the historic per-value GetVarint64 loop
/// every accelerated level must match byte-for-byte, including partial
/// output and status on corrupt input. `*prev` carries the running sum
/// and `*i` the value index so the vector levels can delegate their
/// remainders and fallbacks to the exact reference step.
Status DecodeScalarFrom(std::string_view src, size_t* pos, uint64_t count,
                        uint64_t limit, const char* range_error,
                        uint64_t* prev, uint64_t* i,
                        std::vector<VertexId>* out) {
  for (; *i < count; ++*i) {
    uint64_t delta = 0;
    KSP_RETURN_NOT_OK(GetVarint64(src, pos, &delta));
    *prev += delta;
    if (limit != kVarintNoLimit && *prev >= limit) {
      return Status::Corruption(range_error);
    }
    out->push_back(static_cast<VertexId>(*prev));
  }
  return Status::OK();
}

Status DecodeScalar(std::string_view src, size_t* pos, uint64_t count,
                    uint64_t limit, const char* range_error,
                    std::vector<VertexId>* out) {
  uint64_t prev = 0;
  uint64_t i = 0;
  return DecodeScalarFrom(src, pos, count, limit, range_error, &prev, &i,
                          out);
}

/// One scalar reference step (shared by the vector levels' slow paths).
Status DecodeOneScalar(std::string_view src, size_t* pos, uint64_t limit,
                       const char* range_error, uint64_t* prev,
                       std::vector<VertexId>* out) {
  uint64_t delta = 0;
  KSP_RETURN_NOT_OK(GetVarint64(src, pos, &delta));
  *prev += delta;
  if (limit != kVarintNoLimit && *prev >= limit) {
    return Status::Corruption(range_error);
  }
  out->push_back(static_cast<VertexId>(*prev));
  return Status::OK();
}

#if defined(KSP_SIMD_VARINT_X86)

/// All-continuation-bits-clear blocks are runs of one-byte varints: the
/// movemask test classifies 16/32 bytes at once, a psadbw computes the
/// exact u64 block sum (for the inter-block carry and the bounds gate),
/// and a widening prefix sum materializes the running ids. Mixed blocks,
/// tails, and anything that would trip the bound fall back to the scalar
/// reference step, so every error path IS the reference error path.
__attribute__((target("sse4.1"))) Status DecodeSse41(
    std::string_view src, size_t* pos, uint64_t count, uint64_t limit,
    const char* range_error, std::vector<VertexId>* out) {
  const uint8_t* base = reinterpret_cast<const uint8_t*>(src.data());
  uint64_t prev = 0;
  uint64_t i = 0;
  while (i < count) {
    if (count - i >= 16 && src.size() - *pos >= 16) {
      const __m128i chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + *pos));
      if (_mm_movemask_epi8(chunk) == 0) {
        const __m128i sad = _mm_sad_epu8(chunk, _mm_setzero_si128());
        const uint64_t block_sum =
            static_cast<uint64_t>(_mm_extract_epi64(sad, 0)) +
            static_cast<uint64_t>(_mm_extract_epi64(sad, 1));
        // The gate also rejects blocks whose intermediate sums could
        // wrap the 32-bit lanes: under a limit (< 2^32) a passing block
        // stays below it everywhere, because deltas are non-negative.
        if (limit == kVarintNoLimit || prev + block_sum < limit) {
          const size_t n = out->size();
          out->resize(n + 16);
          VertexId* dst = out->data() + n;
          uint32_t carry = static_cast<uint32_t>(prev);
          for (int q = 0; q < 4; ++q) {
            uint32_t quad = 0;
            std::memcpy(&quad, base + *pos + 4 * q, 4);
            __m128i v = _mm_cvtepu8_epi32(
                _mm_cvtsi32_si128(static_cast<int>(quad)));
            v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
            v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
            v = _mm_add_epi32(v, _mm_set1_epi32(static_cast<int>(carry)));
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 4 * q), v);
            carry = static_cast<uint32_t>(_mm_extract_epi32(v, 3));
          }
          prev += block_sum;
          *pos += 16;
          i += 16;
          continue;
        }
      }
    }
    KSP_RETURN_NOT_OK(
        DecodeOneScalar(src, pos, limit, range_error, &prev, out));
    ++i;
  }
  return Status::OK();
}

__attribute__((target("avx2"))) Status DecodeAvx2(
    std::string_view src, size_t* pos, uint64_t count, uint64_t limit,
    const char* range_error, std::vector<VertexId>* out) {
  const uint8_t* base = reinterpret_cast<const uint8_t*>(src.data());
  const __m256i lane3 = _mm256_set1_epi32(3);
  uint64_t prev = 0;
  uint64_t i = 0;
  while (i < count) {
    if (count - i >= 32 && src.size() - *pos >= 32) {
      const __m256i chunk = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + *pos));
      if (_mm256_movemask_epi8(chunk) == 0) {
        const __m256i sad = _mm256_sad_epu8(chunk, _mm256_setzero_si256());
        const uint64_t block_sum =
            static_cast<uint64_t>(_mm256_extract_epi64(sad, 0)) +
            static_cast<uint64_t>(_mm256_extract_epi64(sad, 1)) +
            static_cast<uint64_t>(_mm256_extract_epi64(sad, 2)) +
            static_cast<uint64_t>(_mm256_extract_epi64(sad, 3));
        if (limit == kVarintNoLimit || prev + block_sum < limit) {
          const size_t n = out->size();
          out->resize(n + 32);
          VertexId* dst = out->data() + n;
          uint32_t carry = static_cast<uint32_t>(prev);
          for (int q = 0; q < 4; ++q) {
            __m256i v = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(base + *pos + 8 * q)));
            v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
            v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
            // Carry the low 128-lane's total into the high lane.
            __m256i low_total = _mm256_permutevar8x32_epi32(v, lane3);
            low_total = _mm256_blend_epi32(_mm256_setzero_si256(),
                                           low_total, 0xF0);
            v = _mm256_add_epi32(v, low_total);
            v = _mm256_add_epi32(
                v, _mm256_set1_epi32(static_cast<int>(carry)));
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8 * q), v);
            carry = static_cast<uint32_t>(_mm256_extract_epi32(v, 7));
          }
          prev += block_sum;
          *pos += 32;
          i += 32;
          continue;
        }
      }
    }
    KSP_RETURN_NOT_OK(
        DecodeOneScalar(src, pos, limit, range_error, &prev, out));
    ++i;
  }
  return Status::OK();
}

#endif  // KSP_SIMD_VARINT_X86

using DecodeFn = Status (*)(std::string_view, size_t*, uint64_t, uint64_t,
                            const char*, std::vector<VertexId>*);

DecodeFn FnFor(VarintIsa isa) {
  switch (isa) {
#if defined(KSP_SIMD_VARINT_X86)
    case VarintIsa::kSse41:
      return &DecodeSse41;
    case VarintIsa::kAvx2:
      return &DecodeAvx2;
#endif
    default:
      return &DecodeScalar;
  }
}

VarintIsa DetectBestIsa() {
#if defined(KSP_SIMD_VARINT_X86)
  if (__builtin_cpu_supports("avx2")) return VarintIsa::kAvx2;
  if (__builtin_cpu_supports("sse4.1")) return VarintIsa::kSse41;
#endif
  return VarintIsa::kScalar;
}

VarintIsa BestIsa() {
  static const VarintIsa best = DetectBestIsa();
  return best;
}

/// Testing override + resolved dispatch target. The pointer is atomic so
/// a (test-only) override never races the hot-path load into UB.
std::atomic<DecodeFn> g_decode{nullptr};
std::atomic<int> g_active_isa{-1};

DecodeFn ActiveFn() {
  DecodeFn fn = g_decode.load(std::memory_order_acquire);
  if (fn != nullptr) return fn;
  const VarintIsa best = BestIsa();
  g_active_isa.store(static_cast<int>(best), std::memory_order_relaxed);
  fn = FnFor(best);
  g_decode.store(fn, std::memory_order_release);
  return fn;
}

}  // namespace

const char* VarintIsaName(VarintIsa isa) {
  switch (isa) {
    case VarintIsa::kScalar:
      return "scalar";
    case VarintIsa::kSse41:
      return "sse4.1";
    case VarintIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::vector<VarintIsa> SupportedVarintIsas() {
  std::vector<VarintIsa> levels = {VarintIsa::kScalar};
  const VarintIsa best = BestIsa();
  if (best >= VarintIsa::kSse41) levels.push_back(VarintIsa::kSse41);
  if (best >= VarintIsa::kAvx2) levels.push_back(VarintIsa::kAvx2);
  return levels;
}

VarintIsa ActiveVarintIsa() {
  ActiveFn();  // Resolve if not yet resolved.
  return static_cast<VarintIsa>(
      g_active_isa.load(std::memory_order_relaxed));
}

void SetVarintIsaForTesting(VarintIsa isa) {
  KSP_CHECK(isa <= BestIsa()) << "unsupported varint ISA level";
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_decode.store(FnFor(isa), std::memory_order_release);
}

void ResetVarintIsaForTesting() {
  g_active_isa.store(static_cast<int>(BestIsa()),
                     std::memory_order_relaxed);
  g_decode.store(FnFor(BestIsa()), std::memory_order_release);
}

Status DecodeVarintDeltas(std::string_view src, size_t* pos, uint64_t count,
                          uint64_t limit, const char* range_error,
                          std::vector<VertexId>* out) {
  return ActiveFn()(src, pos, count, limit, range_error, out);
}

}  // namespace ksp
