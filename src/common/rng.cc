#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ksp {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // Guard against rounding.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t r) const {
  assert(r < cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace ksp
