#ifndef KSP_COMMON_VARINT_H_
#define KSP_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ksp {

/// LEB128-style unsigned varint codec used by the disk-resident inverted
/// indexes (delta-encoded postings). Small values take one byte; a 64-bit
/// value takes at most 10 bytes.
void PutVarint64(std::string* dst, uint64_t value);

/// Decodes one varint from `src` at `*offset`, advancing the offset.
/// Fails with Corruption on truncated or over-long input.
Status GetVarint64(std::string_view src, size_t* offset, uint64_t* value);

/// Appends a fixed-width little-endian 64/32-bit value.
void PutFixed64(std::string* dst, uint64_t value);
void PutFixed32(std::string* dst, uint32_t value);

Status GetFixed64(std::string_view src, size_t* offset, uint64_t* value);
Status GetFixed32(std::string_view src, size_t* offset, uint32_t* value);

/// Length-prefixed string (varint length + raw bytes).
void PutLengthPrefixed(std::string* dst, std::string_view value);
Status GetLengthPrefixed(std::string_view src, size_t* offset,
                         std::string* value);

}  // namespace ksp

#endif  // KSP_COMMON_VARINT_H_
