#include "common/fault_injection.h"

#include <utility>

namespace ksp {

namespace {

Status Injected(const std::string& op, const std::string& path) {
  return Status::IOError("injected fault: " + op + ": " + path);
}

}  // namespace

bool FaultInjectingFileSystem::CountAndCheck(FailureMode* mode) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t op = ops_++;
  *mode = mode_;
  if (fail_at_ >= 0 && op >= fail_at_) {
    ++faults_;
    return true;
  }
  return false;
}

/// Wraps a WritableFile; every Append/Sync/Close consults the owning
/// filesystem's fault schedule. A triggered short write appends half the
/// data before reporting the error, modeling a torn page.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectingFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  Status Append(std::string_view data) override {
    FaultInjectingFileSystem::FailureMode mode;
    if (fs_->CountAndCheck(&mode)) {
      if (mode == FaultInjectingFileSystem::FailureMode::kShortWrite &&
          !data.empty()) {
        base_->Append(data.substr(0, data.size() / 2));
      }
      return Injected("write", base_->path());
    }
    return base_->Append(data);
  }

  Status Sync() override {
    FaultInjectingFileSystem::FailureMode mode;
    if (fs_->CountAndCheck(&mode)) return Injected("fsync", base_->path());
    return base_->Sync();
  }

  Status Close() override {
    FaultInjectingFileSystem::FailureMode mode;
    if (fs_->CountAndCheck(&mode)) return Injected("close", base_->path());
    return base_->Close();
  }

  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingFileSystem* fs_;
};

class FaultInjectingRandomAccessFile : public RandomAccessFile {
 public:
  FaultInjectingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                                 FaultInjectingFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    FaultInjectingFileSystem::FailureMode mode;
    if (fs_->CountAndCheck(&mode)) return Injected("read", base_->path());
    return base_->Read(offset, n, out);
  }

  uint64_t Size() const override { return base_->Size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectingFileSystem* fs_;
};

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::NewWritableFile(const std::string& path) {
  FailureMode mode;
  if (CountAndCheck(&mode)) return Injected("open for write", path);
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(std::move(*base), this));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectingFileSystem::NewRandomAccessFile(const std::string& path) {
  FailureMode mode;
  if (CountAndCheck(&mode)) return Injected("open", path);
  auto base = base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      new FaultInjectingRandomAccessFile(std::move(*base), this));
}

Status FaultInjectingFileSystem::RenameFile(const std::string& from,
                                            const std::string& to) {
  FailureMode mode;
  if (CountAndCheck(&mode)) return Injected("rename", from);
  return base_->RenameFile(from, to);
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  FailureMode mode;
  if (CountAndCheck(&mode)) return Injected("remove", path);
  return base_->RemoveFile(path);
}

bool FaultInjectingFileSystem::FileExists(const std::string& path) {
  // Existence probes are metadata-only; not a counted fault point.
  return base_->FileExists(path);
}

Status FaultInjectingFileSystem::SyncDir(const std::string& dir) {
  FailureMode mode;
  if (CountAndCheck(&mode)) return Injected("fsync dir", dir);
  return base_->SyncDir(dir);
}

}  // namespace ksp
