#ifndef KSP_COMMON_TYPES_H_
#define KSP_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace ksp {

/// Dense id of a vertex in the RDF graph (entities, types, literals that
/// became vertices). Assigned contiguously from 0 by the KB builder.
using VertexId = uint32_t;

/// Dense id of a vocabulary term (keyword).
using TermId = uint32_t;

/// Dense id of a place vertex within the place registry (0..num_places).
using PlaceId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr TermId kInvalidTerm = std::numeric_limits<TermId>::max();
inline constexpr PlaceId kInvalidPlace =
    std::numeric_limits<PlaceId>::max();

/// Graph (hop) distances. kUnreachable marks "no path".
using HopDistance = uint32_t;
inline constexpr HopDistance kUnreachable =
    std::numeric_limits<HopDistance>::max();

}  // namespace ksp

#endif  // KSP_COMMON_TYPES_H_
