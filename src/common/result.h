#ifndef KSP_COMMON_RESULT_H_
#define KSP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ksp {

/// Value-or-error carrier (a small subset of absl::StatusOr / arrow::Result).
/// Invariant: exactly one of {value, non-OK status} is present.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success) or Status (failure), so
  /// `return value;` and `return Status::IOError(...);` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a Result expression, otherwise assigns its value:
///   KSP_ASSIGN_OR_RETURN(auto graph, LoadGraph(path));
#define KSP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
#define KSP_ASSIGN_OR_RETURN(lhs, expr) \
  KSP_ASSIGN_OR_RETURN_IMPL(KSP_CONCAT_(_result_, __LINE__), lhs, expr)
#define KSP_CONCAT_(a, b) KSP_CONCAT_2_(a, b)
#define KSP_CONCAT_2_(a, b) a##b

}  // namespace ksp

#endif  // KSP_COMMON_RESULT_H_
