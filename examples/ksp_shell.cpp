// Interactive kSP shell: load a knowledge base once, then explore it with
// kSP queries, SPARQL, and dataset statistics.
//
//   ksp_shell [file.nt|file.ttl]        (bundled demo KB if omitted)
//
// Commands:
//   ksp <lat> <lon> <k> <keyword>...      top-k semantic places (SP)
//   kw <k> <keyword>...                   keyword-only search (no location)
//   sparql SELECT ... WHERE { ... }       mini-SPARQL (one line)
//   stats                                 dataset statistics
//   place <iri-or-local-name>             show a place and its document
//   help / quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "rdf/kb_stats.h"
#include "rdf/knowledge_base.h"
#include "sparql/evaluator.h"

namespace {

void PrintResult(const ksp::KnowledgeBase& kb, const ksp::KspResult& result,
                 const ksp::QueryStats& stats) {
  if (result.entries.empty()) {
    std::printf("no qualified semantic place\n");
    return;
  }
  for (size_t i = 0; i < result.entries.size(); ++i) {
    const auto& e = result.entries[i];
    std::printf("%zu. %-40s score=%.3f L=%.0f S=%.3f\n", i + 1,
                kb.VertexIri(kb.place_vertex(e.place)).c_str(), e.score,
                e.looseness, e.spatial_distance);
    for (const auto& match : e.tree.matches) {
      std::printf("   %s @ %u hops (%s)\n",
                  kb.vocabulary().Term(match.term).c_str(), match.distance,
                  kb.VertexIri(match.vertex).c_str());
    }
  }
  std::printf("(%.2f ms, %llu TQSPs)\n", stats.total_ms,
              static_cast<unsigned long long>(stats.tqsp_computations));
}

void ShowPlace(const ksp::KnowledgeBase& kb, const std::string& name) {
  auto vertex = kb.FindVertex(name);
  if (!vertex.has_value()) {
    // Try suffix match over all vertices.
    for (ksp::VertexId v = 0; v < kb.num_vertices(); ++v) {
      if (ksp::EndsWith(kb.VertexIri(v), name)) {
        vertex = v;
        break;
      }
    }
  }
  if (!vertex.has_value()) {
    std::printf("no vertex matches '%s'\n", name.c_str());
    return;
  }
  std::printf("%s\n", kb.VertexIri(*vertex).c_str());
  ksp::PlaceId place = kb.place_of(*vertex);
  if (place != ksp::kInvalidPlace) {
    ksp::Point location = kb.place_location(place);
    std::printf("  place at (%.4f, %.4f)\n", location.x, location.y);
  } else {
    std::printf("  not a place (no coordinates)\n");
  }
  std::printf("  document:");
  for (ksp::TermId t : kb.documents().Terms(*vertex)) {
    std::printf(" %s", kb.vocabulary().Term(t).c_str());
  }
  std::printf("\n  out-edges:\n");
  auto targets = kb.graph().OutNeighbors(*vertex);
  auto preds = kb.graph().OutPredicates(*vertex);
  for (size_t i = 0; i < targets.size(); ++i) {
    std::printf("    --%s--> %s\n",
                kb.predicate_dictionary().Term(preds[i]).c_str(),
                kb.VertexIri(targets[i]).c_str());
  }
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  ksp <lat> <lon> <k> <keyword>...   top-k semantic places (SP)\n"
      "  kw <k> <keyword>...                keyword-only search\n"
      "  sparql <query>                     mini-SPARQL on one line\n"
      "  stats                              dataset statistics\n"
      "  place <iri-or-suffix>              inspect a vertex\n"
      "  help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto kb = [&]() {
    if (argc > 1) {
      return ksp::EndsWith(argv[1], ".ttl")
                 ? ksp::LoadKnowledgeBaseFromTurtleFile(argv[1])
                 : ksp::LoadKnowledgeBaseFromFile(argv[1]);
    }
    return ksp::LoadKnowledgeBaseFromString(ksp::MontmajourNTriples());
  }();
  if (!kb.ok()) {
    std::fprintf(stderr, "cannot load KB: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded: %u vertices, %llu edges, %u places\n",
              (*kb)->num_vertices(),
              static_cast<unsigned long long>((*kb)->num_edges()),
              (*kb)->num_places());

  ksp::KspDatabase db(kb->get());
  std::printf("building indexes (alpha=3)...\n");
  db.PrepareAll(3);
  ksp::QueryExecutor executor(&db);
  ksp::sparql::SparqlEvaluator sparql(kb->get());
  PrintHelp();

  std::string line;
  while (std::printf("ksp> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "stats") {
      std::printf("%s\n",
                  ksp::ComputeKnowledgeBaseStats(**kb).ToString().c_str());
      continue;
    }
    if (command == "place") {
      std::string name;
      if (in >> name) ShowPlace(**kb, name);
      continue;
    }
    if (command == "sparql") {
      std::string query_text(ksp::TrimWhitespace(
          line.substr(std::string("sparql").size())));
      auto rows = sparql.ExecuteText(query_text);
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
      } else {
        std::printf("%s(%zu rows)\n", sparql.ToTable(*rows).c_str(),
                    rows->rows.size());
      }
      continue;
    }
    if (command == "ksp" || command == "kw") {
      double lat = 0;
      double lon = 0;
      int k = 0;
      bool spatial = command == "ksp";
      if (spatial && !(in >> lat >> lon)) {
        std::printf("usage: ksp <lat> <lon> <k> <keyword>...\n");
        continue;
      }
      if (!(in >> k) || k <= 0) {
        std::printf("usage: %s ... <k> <keyword>...\n", command.c_str());
        continue;
      }
      std::vector<std::string> keywords;
      std::string keyword;
      while (in >> keyword) keywords.push_back(keyword);
      if (keywords.empty()) {
        std::printf("need at least one keyword\n");
        continue;
      }
      ksp::KspQuery query = db.MakeQuery(
          ksp::Point{lat, lon}, keywords, static_cast<uint32_t>(k));
      ksp::QueryStats stats;
      auto result = spatial ? executor.ExecuteSp(query, &stats)
                            : executor.ExecuteKeywordOnly(query, &stats);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(**kb, *result, stats);
      }
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", command.c_str());
  }
  return 0;
}
