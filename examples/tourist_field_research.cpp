// The paper's motivating scenario at scale: a tourist does field research
// around a location over a large knowledge base. This example generates a
// DBpedia-like synthetic KB, issues the same query from two different
// locations (Example 2 of the paper: answers change with the location),
// and compares the three kSP algorithms on the same workload.

#include <cstdio>

#include "common/timer.h"
#include "core/database.h"
#include "core/executor.h"
#include "datagen/query_gen.h"
#include "datagen/synthetic.h"

namespace {

void PrintResult(const ksp::KnowledgeBase& kb, const char* label,
                 const ksp::KspResult& result) {
  std::printf("%s\n", label);
  for (size_t i = 0; i < result.entries.size(); ++i) {
    const auto& e = result.entries[i];
    std::printf("  %zu. %-34s score=%8.3f  L=%3.0f  S=%6.3f\n", i + 1,
                kb.VertexIri(kb.place_vertex(e.place)).c_str(), e.score,
                e.looseness, e.spatial_distance);
  }
}

}  // namespace

int main() {
  std::printf("Generating a DBpedia-like knowledge base...\n");
  auto kb = ksp::GenerateKnowledgeBase(
      ksp::SyntheticProfile::DBpediaLike(20000));
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  std::printf("  %u vertices, %llu edges, %u places\n",
              (*kb)->num_vertices(),
              static_cast<unsigned long long>((*kb)->num_edges()),
              (*kb)->num_places());

  ksp::KspDatabase db(kb->get());
  ksp::Timer prep;
  prep.Start();
  db.PrepareAll(/*alpha=*/3);
  ksp::QueryExecutor executor(&db);
  std::printf("  indexes built in %.2f s (R-tree %.2fs, reach %.2fs, "
              "alpha %.2fs)\n\n",
              prep.ElapsedSeconds(), db.preprocessing_times().rtree_s,
              db.preprocessing_times().reachability_s,
              db.preprocessing_times().alpha_s);

  // A generated query plays the tourist's keyword set; we then move the
  // tourist and show that the ranking is location-aware.
  ksp::QueryGenOptions qopt;
  qopt.num_keywords = 4;
  qopt.k = 3;
  auto queries = ksp::GenerateQueries(**kb, ksp::QueryClass::kOriginal,
                                      qopt, 1);
  if (queries.empty()) {
    std::fprintf(stderr, "could not generate a query\n");
    return 1;
  }
  ksp::KspQuery query = queries[0];
  std::printf("Query keywords:");
  for (ksp::TermId t : query.keywords) {
    std::printf(" %s", (*kb)->vocabulary().Term(t).c_str());
  }
  std::printf("\n\n");

  auto here = executor.ExecuteSp(query);
  if (!here.ok()) {
    std::fprintf(stderr, "%s\n", here.status().ToString().c_str());
    return 1;
  }
  PrintResult(**kb, "Top-3 from the tourist's location:", *here);

  ksp::KspQuery moved = query;
  moved.location.x += 5.0;  // The tourist travels ~5 degrees north.
  auto there = executor.ExecuteSp(moved);
  if (!there.ok()) return 1;
  PrintResult(**kb, "\nTop-3 after moving 5 degrees away:", *there);

  // Same answers, very different work: run all three algorithms.
  std::printf("\nAlgorithm comparison on this query:\n");
  struct Row {
    const char* name;
    ksp::Result<ksp::KspResult> (ksp::QueryExecutor::*run)(
        const ksp::KspQuery&, ksp::QueryStats*);
  };
  for (const Row& row : {Row{"BSP", &ksp::QueryExecutor::ExecuteBsp},
                         Row{"SPP", &ksp::QueryExecutor::ExecuteSpp},
                         Row{"SP ", &ksp::QueryExecutor::ExecuteSp}}) {
    ksp::QueryStats stats;
    auto result = (executor.*row.run)(query, &stats);
    if (!result.ok()) return 1;
    std::printf("  %s  %8.2f ms  (%llu TQSP computations, %llu R-tree "
                "nodes)\n",
                row.name, stats.total_ms,
                static_cast<unsigned long long>(stats.tqsp_computations),
                static_cast<unsigned long long>(stats.rtree_nodes_accessed));
  }
  return 0;
}
