// Command-line kSP query tool over any N-Triples file.
//
//   ksp_query_tool [options] <file.nt> <lat> <lon> <keyword> [keyword...]
//
// Options:
//   --algo=bsp|spp|sp|ta   algorithm (default sp)
//   --k=N                  number of results (default 3)
//   --alpha=N              α-radius for the SP bounds (default 3)
//   --undirected           follow edges in both directions (§8 variant)
//   --index-dir=DIR        cache indexes in DIR (load if present, save
//                          after building otherwise)
//   --stats                print dataset statistics before querying
//
// With no arguments it runs a demo on the bundled Montmajour dataset.
// Place coordinates are read from geo:lat/geo:long, georss:point, or WKT
// POINT literals in the input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "core/parallel.h"
#include "datagen/fixtures.h"
#include "rdf/kb_stats.h"
#include "rdf/knowledge_base.h"

namespace {

struct ToolOptions {
  ksp::KspAlgorithm algorithm = ksp::KspAlgorithm::kSp;
  uint32_t k = 3;
  uint32_t alpha = 3;
  bool undirected = false;
  bool print_stats = false;
  std::string index_dir;
};

int RunQuery(const ksp::KnowledgeBase& kb, const ksp::KspDatabase& db,
             const ToolOptions& options, ksp::Point location,
             const std::vector<std::string>& keywords) {
  ksp::QueryExecutor executor(&db);
  ksp::KspQuery query = db.MakeQuery(location, keywords, options.k);
  ksp::QueryStats stats;
  auto result = ExecuteWith(&executor, options.algorithm, query, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (result->entries.empty()) {
    std::printf("No qualified semantic place covers all keywords.\n");
    return 0;
  }
  for (size_t i = 0; i < result->entries.size(); ++i) {
    const auto& e = result->entries[i];
    std::printf("%zu. %s\n", i + 1,
                kb.VertexIri(kb.place_vertex(e.place)).c_str());
    std::printf("   score=%.4f looseness=%.0f distance=%.4f\n", e.score,
                e.looseness, e.spatial_distance);
    for (const auto& match : e.tree.matches) {
      std::printf("   '%s' covered by %s (%u hops:",
                  kb.vocabulary().Term(match.term).c_str(),
                  kb.VertexIri(match.vertex).c_str(), match.distance);
      for (ksp::VertexId v : match.path) {
        std::printf(" %s",
                    std::string(ksp::UriLocalName(kb.VertexIri(v))).c_str());
      }
      std::printf(")\n");
    }
  }
  std::printf(
      "[%s: %.2f ms, %llu TQSP computations, %llu R-tree nodes]\n",
      ksp::KspAlgorithmName(options.algorithm), stats.total_ms,
      static_cast<unsigned long long>(stats.tqsp_computations),
      static_cast<unsigned long long>(stats.rtree_nodes_accessed));
  return 0;
}

void PrepareDatabase(ksp::KspDatabase* db, const ToolOptions& options) {
  if (!options.index_dir.empty()) {
    if (db->LoadIndexes(options.index_dir).ok() &&
        db->alpha_index() != nullptr &&
        db->reachability_index() != nullptr &&
        db->alpha_index()->alpha() == options.alpha) {
      std::printf("(indexes loaded from %s)\n",
                  options.index_dir.c_str());
      return;
    }
  }
  db->PrepareAll(options.alpha);
  if (!options.index_dir.empty()) {
    if (db->SaveIndexes(options.index_dir).ok()) {
      std::printf("(indexes cached in %s)\n", options.index_dir.c_str());
    }
  }
}

bool ParseFlag(const char* arg, ToolOptions* options) {
  if (std::strncmp(arg, "--algo=", 7) == 0) {
    std::string name = arg + 7;
    if (name == "bsp") {
      options->algorithm = ksp::KspAlgorithm::kBsp;
    } else if (name == "spp") {
      options->algorithm = ksp::KspAlgorithm::kSpp;
    } else if (name == "sp") {
      options->algorithm = ksp::KspAlgorithm::kSp;
    } else if (name == "ta") {
      options->algorithm = ksp::KspAlgorithm::kTa;
    } else {
      std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
      return false;
    }
    return true;
  }
  if (std::strncmp(arg, "--k=", 4) == 0) {
    options->k = static_cast<uint32_t>(std::atoi(arg + 4));
    return true;
  }
  if (std::strncmp(arg, "--alpha=", 8) == 0) {
    options->alpha = static_cast<uint32_t>(std::atoi(arg + 8));
    return true;
  }
  if (std::strcmp(arg, "--undirected") == 0) {
    options->undirected = true;
    return true;
  }
  if (std::strncmp(arg, "--index-dir=", 12) == 0) {
    options->index_dir = arg + 12;
    return true;
  }
  if (std::strcmp(arg, "--stats") == 0) {
    options->print_stats = true;
    return true;
  }
  std::fprintf(stderr, "unknown flag '%s'\n", arg);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ToolOptions options;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (!ParseFlag(argv[i], &options)) return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (positional.empty()) {
    std::printf("Demo mode (bundled Montmajour dataset).\n");
    std::printf(
        "Usage: %s [--algo=sp] [--k=3] [--alpha=3] [--undirected] "
        "[--index-dir=DIR] [--stats] <file.nt> <lat> <lon> <keyword>...\n\n",
        argv[0]);
    auto kb = ksp::LoadKnowledgeBaseFromString(ksp::MontmajourNTriples());
    if (!kb.ok()) return 1;
    ksp::KspDatabase db(kb->get());
    db.PrepareAll(3);
    options.k = 2;
    return RunQuery(**kb, db, options, ksp::kQ1,
                    {"ancient", "roman", "catholic", "history"});
  }
  if (positional.size() < 4) {
    std::fprintf(stderr,
                 "usage: %s [flags] <file.nt> <lat> <lon> <keyword>...\n",
                 argv[0]);
    return 2;
  }

  auto kb = ksp::LoadKnowledgeBaseFromFile(positional[0]);
  if (!kb.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", positional[0],
                 kb.status().ToString().c_str());
    return 1;
  }
  if (options.print_stats) {
    std::printf("%s\n\n",
                ksp::ComputeKnowledgeBaseStats(**kb).ToString().c_str());
  }
  if ((*kb)->num_places() == 0) {
    std::fprintf(stderr,
                 "no place vertices found (need geo:lat/long, "
                 "georss:point or WKT POINT literals)\n");
    return 1;
  }

  ksp::Point location{std::atof(positional[1]), std::atof(positional[2])};
  std::vector<std::string> keywords;
  for (size_t i = 3; i < positional.size(); ++i) {
    keywords.push_back(positional[i]);
  }

  ksp::KspOptions db_options;
  db_options.undirected_edges = options.undirected;
  ksp::KspDatabase db(kb->get(), db_options);
  PrepareDatabase(&db, options);
  return RunQuery(**kb, db, options, location, keywords);
}
