// The paper's motivation, executable: answering "what is near me that
// relates to ancient/roman/catholic/history?" two ways.
//
//  1. The structured-query path (GeoSPARQL-style): the user must know the
//     schema — which predicates exist, how entities connect — and write a
//     basic graph pattern with a spatial FILTER.
//  2. The kSP path: the user provides keywords and a location; the engine
//     finds the tightest semantic places, schema-free.
//
// Both run over the same Figure 1 knowledge base and find Montmajour
// Abbey — but the SPARQL query only works because we, the authors, knew
// the <dedication> and <birthPlace> predicates to join on.

#include <cstdio>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "sparql/evaluator.h"

int main() {
  auto kb = ksp::BuildFigure1KnowledgeBase();
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }

  // --- Path 1: structured query (schema knowledge required). ---
  ksp::sparql::SparqlEvaluator sparql(kb->get());
  const char* query_text =
      "SELECT ?place ?saint WHERE {\n"
      "  ?place <http://example.org/dedication> ?saint .\n"
      "  ?saint <http://example.org/birthPlace> "
      "<http://example.org/Roman_Empire> .\n"
      "  FILTER(distance(?place, POINT(43.51, 4.75)) < 1.0)\n"
      "}";
  std::printf("SPARQL way (requires knowing the schema):\n%s\n\n",
              query_text);
  auto rows = sparql.ExecuteText(query_text);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", sparql.ToTable(*rows).c_str());

  // --- Path 2: kSP (keywords + location, no schema). ---
  ksp::KspDatabase db(kb->get());
  db.PrepareAll(/*alpha=*/3);
  ksp::QueryExecutor executor(&db);
  ksp::KspQuery query = db.MakeQuery(
      ksp::kQ1, {"ancient", "roman", "catholic", "history"}, 1);
  auto top = executor.ExecuteSp(query);
  if (!top.ok()) {
    std::fprintf(stderr, "%s\n", top.status().ToString().c_str());
    return 1;
  }
  std::printf("kSP way (keywords + location only):\n");
  std::printf("  keywords: ancient roman catholic history @ (%.2f, %.2f)\n",
              ksp::kQ1.x, ksp::kQ1.y);
  for (const auto& entry : top->entries) {
    std::printf("  -> %s (score %.2f, looseness %.0f)\n",
                (*kb)->VertexIri((*kb)->place_vertex(entry.place)).c_str(),
                entry.score, entry.looseness);
    for (const auto& match : entry.tree.matches) {
      std::printf("     '%s' via %s\n",
                  (*kb)->vocabulary().Term(match.term).c_str(),
                  (*kb)->VertexIri(match.vertex).c_str());
    }
  }
  std::printf(
      "\nSame answer — but the kSP query needed no predicate names, no\n"
      "graph shape, and adapts when the user moves (try location q2).\n");
  return 0;
}
