// Quickstart: load a small spatial RDF dataset from N-Triples, prepare
// the kSP database, and answer one top-k relevant semantic place query
// through a QueryExecutor session.
//
// This is the running example of the paper (Montmajour Abbey, Figure 1):
// a tourist at location q1 searches for places related to
// {ancient, roman, catholic, history}.

#include <cstdio>

#include "core/database.h"
#include "core/executor.h"
#include "datagen/fixtures.h"
#include "rdf/knowledge_base.h"

int main() {
  // 1. Ingest RDF triples (N-Triples). Coordinates arrive as geo:lat /
  //    geo:long literals; entities carrying them become place vertices.
  auto kb = ksp::LoadKnowledgeBaseFromString(ksp::MontmajourNTriples());
  if (!kb.ok()) {
    std::fprintf(stderr, "failed to load KB: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  std::printf("Knowledge base: %u vertices, %llu edges, %u places, %u terms\n",
              (*kb)->num_vertices(),
              static_cast<unsigned long long>((*kb)->num_edges()),
              (*kb)->num_places(), (*kb)->num_terms());

  // 2. Build the shared database and its indexes (R-tree over places,
  //    keyword reachability labels, alpha-radius word neighborhoods).
  //    The database must be prepared before any query runs.
  ksp::KspDatabase db(kb->get());
  db.PrepareAll(/*alpha=*/3);

  // 3. Open a query session (cheap; one per thread) and ask: top-2
  //    semantic places near q1 for four keywords.
  ksp::QueryExecutor executor(&db);
  ksp::KspQuery query = db.MakeQuery(
      ksp::kQ1, {"ancient", "roman", "catholic", "history"}, /*k=*/2);
  auto result = executor.ExecuteSp(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Print the ranked semantic places with their keyword trees.
  std::printf("\nTop-%u semantic places at (%.2f, %.2f):\n", query.k,
              query.location.x, query.location.y);
  for (size_t i = 0; i < result->entries.size(); ++i) {
    const auto& entry = result->entries[i];
    std::printf("%zu. %s\n", i + 1,
                (*kb)->VertexIri((*kb)->place_vertex(entry.place)).c_str());
    std::printf("   score=%.3f  looseness=%.0f  distance=%.3f\n",
                entry.score, entry.looseness, entry.spatial_distance);
    for (const auto& match : entry.tree.matches) {
      std::printf("   keyword '%s' at %s (%u hops)\n",
                  (*kb)->vocabulary().Term(match.term).c_str(),
                  (*kb)->VertexIri(match.vertex).c_str(), match.distance);
    }
  }
  return 0;
}
