// §1's application example: "patients who want to find nearby hospitals
// which offer treatment for specific conditions". Builds a small medical
// knowledge base with the programmatic builder API (no RDF files needed)
// and answers condition-aware nearest-hospital queries.

#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "rdf/knowledge_base.h"

namespace {

struct Hospital {
  const char* name;
  double lat;
  double lon;
  std::vector<const char*> departments;
};

}  // namespace

int main() {
  ksp::KnowledgeBaseBuilder builder;
  auto entity = [&](const std::string& local) {
    return builder.AddEntity("http://medkb.example/" + local);
  };

  // Departments and the conditions they treat: shared across hospitals.
  struct Dept {
    const char* name;
    std::vector<const char*> conditions;
  };
  const std::vector<Dept> departments = {
      {"Cardiology_Department", {"heart attack", "arrhythmia", "stroke"}},
      {"Oncology_Department", {"cancer", "lymphoma", "chemotherapy"}},
      {"Pediatrics_Department", {"children", "asthma", "vaccination"}},
      {"Neurology_Department", {"stroke", "epilepsy", "migraine"}},
      {"Orthopedics_Department", {"fracture", "joint replacement"}},
  };

  const std::vector<Hospital> hospitals = {
      {"Riverside_General_Hospital", 40.71, -74.00,
       {"Cardiology_Department", "Oncology_Department"}},
      {"Hilltop_Medical_Center", 40.78, -73.95,
       {"Neurology_Department", "Pediatrics_Department"}},
      {"Lakeside_Clinic", 40.61, -74.08, {"Orthopedics_Department"}},
      {"Northgate_University_Hospital", 40.85, -73.88,
       {"Cardiology_Department", "Neurology_Department",
        "Oncology_Department"}},
  };

  // One vertex per department type per hospital keeps treatments local to
  // the hospital offering them (a department is a real entity).
  for (const Hospital& h : hospitals) {
    ksp::VertexId hv = entity(h.name);
    builder.SetLocation(hv, ksp::Point{h.lat, h.lon});
    for (const char* dept_name : h.departments) {
      for (const Dept& dept : departments) {
        if (std::string(dept.name) != dept_name) continue;
        ksp::VertexId dv =
            entity(std::string(h.name) + "/" + dept.name);
        builder.AddRelation(hv, dv, "http://medkb.example/hasDepartment");
        builder.AddDocumentText(dv, dept.name);
        for (const char* condition : dept.conditions) {
          builder.AddDocumentText(dv, condition);
        }
      }
    }
  }

  auto kb = builder.Finish();
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }

  ksp::KspDatabase db(kb->get());
  db.PrepareAll(/*alpha=*/2);
  ksp::QueryExecutor executor(&db);

  // A patient downtown needs stroke and heart care nearby.
  const ksp::Point patient{40.70, -74.01};
  for (const auto& keywords :
       std::vector<std::vector<std::string>>{{"stroke", "cardiology"},
                                             {"children", "asthma"},
                                             {"cancer", "stroke"}}) {
    ksp::KspQuery query = db.MakeQuery(patient, keywords, /*k=*/2);
    auto result = executor.ExecuteSp(query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("Patient at (%.2f, %.2f) searching for:", patient.x,
                patient.y);
    for (const auto& kw : keywords) std::printf(" %s", kw.c_str());
    std::printf("\n");
    if (result->entries.empty()) {
      std::printf("  no hospital covers all keywords\n\n");
      continue;
    }
    for (size_t i = 0; i < result->entries.size(); ++i) {
      const auto& e = result->entries[i];
      std::printf("  %zu. %-55s score=%.3f (L=%.0f, %.3f deg away)\n",
                  i + 1,
                  (*kb)->VertexIri((*kb)->place_vertex(e.place)).c_str(),
                  e.score, e.looseness, e.spatial_distance);
    }
    std::printf("\n");
  }
  return 0;
}
